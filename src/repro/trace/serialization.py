"""Binary trace serialization (columnar blob format).

Traces are expensive to produce (functional emulation) and cheap to
replay (the timing model), so persisting them pays off when sweeping
many machine configurations — the same split SimpleScalar users make
with EIO traces.  Since the in-memory representation is already
columnar (:class:`~repro.trace.columnar.ColumnarTrace`), the file is
just the columns back to back::

    magic   6 bytes   b"SVFT\\x04\\x00"
    crc32   <I        zlib.crc32 of everything after this field
    count   <Q        number of records
    pc      count * 8 bytes, little-endian uint64
    opcode  count bytes (repro.isa.encoding.OPCODE_NUMBERS)
    flags   count bytes (FLAG_* bits from repro.trace.columnar)
    size    count bytes
    base    count bytes, int8 (-1 = none)
    dst     count bytes, int8 (-1 = none)
    nsrc    count bytes
    src0    count bytes
    src1    count bytes
    disp    count * 8 bytes, little-endian int64
    spimm   count * 8 bytes, little-endian int64
    addr    count * 8 bytes, little-endian uint64
    next_pc count * 8 bytes, little-endian uint64
    sp      count * 8 bytes, little-endian uint64

One ``tobytes``/``frombytes`` per column replaces one ``struct`` call
per record, so saving/loading is dominated by raw I/O.  The magic
header guards against version skew: files written by the old formats
(``SVFT\\x02`` records, ``SVFT\\x03`` checksum-less columns) are
rejected, not misread.  The CRC covers the count and every column, so
a bit-flip anywhere in a cached trace is a :class:`TraceFormatError`
on load — never a silently wrong simulation input (the chaos harness
injects exactly that fault to prove it).
"""

from __future__ import annotations

import struct
import sys
import zlib
from array import array
from typing import BinaryIO, Iterable

from repro.isa.encoding import OPCODE_NAMES
from repro.trace.columnar import ColumnarTrace
from repro.trace.records import TraceRecord

MAGIC = b"SVFT\x04\x00"

_COUNT = struct.Struct("<Q")
_CRC = struct.Struct("<I")

#: (column name, array typecode or None for bytearray) in file order.
COLUMN_LAYOUT = (
    ("pc", "Q"),
    ("opcode", None),
    ("flags", None),
    ("size", None),
    ("base", "b"),
    ("dst", "b"),
    ("nsrc", None),
    ("src0", None),
    ("src1", None),
    ("disp", "q"),
    ("spimm", "q"),
    ("addr", "Q"),
    ("next_pc", "Q"),
    ("sp", "Q"),
)

_BIG_ENDIAN = sys.byteorder == "big"


class TraceFormatError(ValueError):
    """Raised when a file is not a valid serialized trace."""


def _column_to_bytes(column) -> bytes:
    if isinstance(column, bytearray):
        return bytes(column)
    if _BIG_ENDIAN:  # pragma: no cover - little-endian hosts only in CI
        swapped = array(column.typecode, column)
        swapped.byteswap()
        return swapped.tobytes()
    return column.tobytes()


def _write_columns(stream: BinaryIO, trace: ColumnarTrace) -> int:
    count = len(trace)
    blobs = [_COUNT.pack(count)]
    blobs += [
        _column_to_bytes(getattr(trace, name)) for name, _ in COLUMN_LAYOUT
    ]
    crc = 0
    for blob in blobs:
        crc = zlib.crc32(blob, crc)
    stream.write(MAGIC)
    stream.write(_CRC.pack(crc))
    for blob in blobs:
        stream.write(blob)
    return count


class TraceWriter:
    """Streaming sink: attach to ``Machine.run(trace_sink=...)``.

    Records are buffered column-wise and written in one shot by
    :meth:`close` (the columnar format is not per-record appendable).
    Usable as a context manager.
    """

    def __init__(self, stream: BinaryIO):
        self._stream = stream
        self._buffer = ColumnarTrace()
        self._closed = False

    @property
    def count(self) -> int:
        return len(self._buffer)

    def append(self, record: TraceRecord) -> None:
        self._buffer.append(record)

    @property
    def buffer(self) -> ColumnarTrace:
        """The buffered columns (e.g. to reuse without re-reading)."""
        return self._buffer

    def close(self) -> int:
        """Write the buffered trace; returns the record count."""
        if self._closed:
            return len(self._buffer)
        self._closed = True
        return _write_columns(self._stream, self._buffer)

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()


def write_trace(stream: BinaryIO, trace: Iterable) -> int:
    """Write a trace to an open binary stream; returns the record count.

    Accepts a :class:`ColumnarTrace` (written as-is) or any iterable
    of :class:`TraceRecord` (packed first).  Used by callers that
    manage the file themselves (e.g. the trace cache's atomic
    temp-file-then-rename writes).
    """
    return _write_columns(stream, ColumnarTrace.from_records(trace))


def save_trace(trace: Iterable, path: str) -> int:
    """Write a trace to ``path``; returns the record count.

    Accepts a :class:`ColumnarTrace` (written as-is) or any iterable
    of :class:`TraceRecord` (packed first).
    """
    with open(path, "wb") as stream:
        return write_trace(stream, trace)


# ---------------------------------------------------------------------------
# Shared-memory buffer payloads
# ---------------------------------------------------------------------------

#: Commit record of a shared-buffer payload (see :func:`pack_shared`).
SHARED_MAGIC = b"SVFS\x04\x00"

#: Header: magic (6) + pad (2) + count (<Q) = 16 bytes, so the wide
#: columns that follow stay 8-byte aligned for zero-copy casts.
_SHARED_HEADER = 16

#: Buffer column order: wide columns first (alignment), then bytes.
SHARED_ORDER = tuple(
    sorted(COLUMN_LAYOUT, key=lambda item: item[1] is None)
)

_BYTES_PER_RECORD = sum(
    1 if typecode is None else array(typecode).itemsize
    for _, typecode in COLUMN_LAYOUT
)


def shared_payload_size(count: int) -> int:
    """Bytes needed to pack a ``count``-record trace into a buffer."""
    return _SHARED_HEADER + count * _BYTES_PER_RECORD


def pack_shared(buffer, trace: ColumnarTrace) -> int:
    """Pack ``trace`` into a writable buffer; returns bytes written.

    The columns and the record count are written first and the magic
    *last*: the magic is the commit record, so a writer killed mid-pack
    (the chaos harness does exactly that to workers) leaves a buffer
    that :func:`unpack_shared` reports as absent — a torn payload can
    never be attached as a valid trace.
    """
    view = memoryview(buffer)
    count = len(trace)
    size = shared_payload_size(count)
    if len(view) < size:
        raise ValueError(
            f"shared buffer too small: {len(view)} < {size} bytes"
        )
    offset = _SHARED_HEADER
    for name, _ in SHARED_ORDER:
        # Native byte order: a shared buffer never leaves this host,
        # so unlike the file format there is no byteswap on the way
        # in or out.
        blob = memoryview(getattr(trace, name)).cast("B")
        view[offset : offset + len(blob)] = blob
        offset += len(blob)
    view[6:8] = b"\x00\x00"
    _COUNT.pack_into(view, 8, count)
    view[:6] = SHARED_MAGIC
    return size


def unpack_shared(buffer):
    """Read-only column views over a packed buffer, or ``None``.

    Returns ``{column name: memoryview}`` with each view cast to the
    column's element type, or ``None`` when the buffer carries no
    committed payload (bad magic, impossible count) — the caller
    treats that as a cache miss, never an error.
    """
    view = memoryview(buffer).toreadonly()
    if len(view) < _SHARED_HEADER or bytes(view[:6]) != SHARED_MAGIC:
        return None
    (count,) = _COUNT.unpack_from(view, 8)
    if shared_payload_size(count) > len(view):
        return None
    columns = {}
    offset = _SHARED_HEADER
    for name, typecode in SHARED_ORDER:
        if typecode is None:
            width = count
            columns[name] = view[offset : offset + width]
        else:
            width = count * array(typecode).itemsize
            columns[name] = view[offset : offset + width].cast(typecode)
        offset += width
    return columns


def load_trace(path: str) -> ColumnarTrace:
    """Read a trace written by :func:`save_trace` / :class:`TraceWriter`."""
    with open(path, "rb") as stream:
        blob = stream.read()
    header_size = len(MAGIC) + _CRC.size + _COUNT.size
    if blob[: len(MAGIC)] != MAGIC or len(blob) < header_size:
        raise TraceFormatError(f"bad trace header in {path!r}")
    (crc,) = _CRC.unpack_from(blob, len(MAGIC))
    if zlib.crc32(memoryview(blob)[len(MAGIC) + _CRC.size:]) != crc:
        raise TraceFormatError(f"checksum mismatch in {path!r}")
    (count,) = _COUNT.unpack_from(blob, len(MAGIC) + _CRC.size)
    trace = ColumnarTrace()
    offset = header_size
    for name, typecode in COLUMN_LAYOUT:
        if typecode is None:
            width = count
            column = bytearray(blob[offset : offset + width])
        else:
            column = array(typecode)
            width = count * column.itemsize
            if len(blob) - offset < width:
                raise TraceFormatError(f"truncated trace file {path!r}")
            column.frombytes(blob[offset : offset + width])
            if _BIG_ENDIAN:  # pragma: no cover
                column.byteswap()
        if len(column) != count:
            raise TraceFormatError(f"truncated trace file {path!r}")
        setattr(trace, name, column)
        offset += width
    if offset != len(blob):
        raise TraceFormatError(f"trailing bytes in trace file {path!r}")
    for opcode in trace.opcode:
        if opcode not in OPCODE_NAMES:
            raise TraceFormatError(
                f"bad opcode {opcode} in trace file {path!r}"
            )
    return trace
