"""Unit tests for the -O1 optimizer pipeline (repro.lang.opt)."""

import pytest

from repro.analysis import lint_program
from repro.emulator import run_program
from repro.isa import Instruction
from repro.isa.assembler import assemble
from repro.isa.printer import render_program
from repro.isa.registers import SP, V0
from repro.lang import compile_program
from repro.lang.codegen import CodegenOptions, compile_to_assembly
from repro.lang.opt import optimize_program
from repro.lang.opt.ir import EditSet, rebuild_program
from repro.workloads import workload


class TestEditSet:
    def test_delete_wins_over_replace(self):
        edits = EditSet()
        edits.replace(3, Instruction("nop"))
        edits.delete(3)
        assert 3 in edits.deletions and 3 not in edits.replacements
        # ... in either order.
        edits.replace(3, Instruction("nop"))
        assert 3 not in edits.replacements

    def test_merge_respects_deletions(self):
        left = EditSet()
        left.delete(1)
        right = EditSet()
        right.replace(1, Instruction("nop"))
        right.replace(2, Instruction("nop"))
        left.merge(right)
        assert left.deletions == {1}
        assert set(left.replacements) == {2}

    def test_bool_and_len(self):
        edits = EditSet()
        assert not edits and len(edits) == 0
        edits.delete(0)
        edits.replace(4, Instruction("nop"))
        assert edits and len(edits) == 2


class TestRebuildProgram:
    ASM = """
    .text
    __start:
        bsr main
        halt
    main:
        lda sp, -16(sp)
        lda t0, 1(zero)
        lda t0, 2(zero)
        beq zero, skip
        lda t0, 3(zero)
    skip:
        addq t0, 0, v0
        lda sp, 16(sp)
        ret
    """

    def test_branch_targets_remap_over_deletions(self):
        program = assemble(self.ASM, entry="__start")
        # Delete the first `lda t0, 1(zero)` (index 3): everything
        # after shifts down one; the branch target must follow.
        target_before = next(
            i.target_index for i in program.instructions
            if i.op == "beq"
        )
        edits = EditSet()
        edits.delete(3)
        rebuilt = rebuild_program(program, edits)
        assert len(rebuilt) == len(program) - 1
        target_after = next(
            i.target_index for i in rebuilt.instructions if i.op == "beq"
        )
        assert target_after == target_before - 1
        assert rebuilt.labels["skip"] == program.labels["skip"] - 1

    def test_deleted_branch_target_maps_to_next_survivor(self):
        program = assemble(self.ASM, entry="__start")
        # Delete the instruction *at* the branch target: the branch
        # must land on the next surviving instruction (no-op effect).
        target = next(
            i.target_index for i in program.instructions if i.op == "beq"
        )
        edits = EditSet()
        edits.delete(target)
        rebuilt = rebuild_program(program, edits)
        new_target = next(
            i.target_index for i in rebuilt.instructions if i.op == "beq"
        )
        # Next survivor after the old target is the instruction that
        # previously followed it, now shifted into the target's slot.
        assert rebuilt.instructions[new_target].op == \
            program.instructions[target + 1].op

    def test_original_program_is_not_mutated(self):
        program = assemble(self.ASM, entry="__start")
        before = [i.op for i in program.instructions]
        edits = EditSet()
        edits.delete(3)
        rebuild_program(program, edits)
        assert [i.op for i in program.instructions] == before


REDUNDANT = """
int main() {
    int x; int y;
    x = 6;
    y = 7;
    print(x * y);
    return 0;
}
"""


class TestPipeline:
    def test_removes_traffic_and_preserves_semantics(self):
        baseline = compile_program(REDUNDANT)
        optimized, stats = optimize_program(baseline)
        assert not stats.skipped
        assert stats.instructions_removed > 0
        assert len(optimized) < len(baseline)
        ran0, _ = run_program(baseline, max_instructions=100_000)
        ran1, _ = run_program(optimized, max_instructions=100_000)
        assert ran0.halted and ran1.halted
        assert ran0.output == ran1.output == [42]
        assert ran0.registers[V0] == ran1.registers[V0]

    def test_output_is_lint_clean(self):
        optimized, _ = optimize_program(compile_program(REDUNDANT))
        report = lint_program(optimized, name="redundant-O1")
        assert report.ok and not report.warnings

    def test_unbalanced_sp_disables_everything(self):
        program = compile_program(REDUNDANT)
        for index, instruction in enumerate(program.instructions):
            if instruction.is_sp_adjust and instruction.imm > 0:
                program.instructions[index] = Instruction(
                    "lda", rd=SP, rb=SP, imm=instruction.imm + 16
                )
                break
        optimized, stats = optimize_program(program)
        assert stats.skipped
        assert stats.instructions_removed == 0
        assert optimized is program

    def test_first_read_disables_memory_passes_only(self):
        # main reads a frame slot it never wrote: the memory image is
        # observable, so dead-store elimination and coalescing must
        # stay off while register-only passes may still run.
        program = assemble(
            """
            .text
            __start:
                bsr main
                halt
            main:
                lda sp, -16(sp)
                ldq t0, 8(sp)
                addq t0, 0, v0
                lda sp, 16(sp)
                ret
            """,
            entry="__start",
        )
        _optimized, stats = optimize_program(program)
        assert stats.memory_passes_disabled
        assert stats.dead_stores_deleted == 0
        assert stats.slots_coalesced == 0

    def test_divide_by_zero_trap_is_preserved(self):
        # divq's result is dead, but deleting it would erase the trap.
        program = assemble(
            """
            .text
            __start:
                bsr main
                halt
            main:
                lda sp, -16(sp)
                lda t0, 1(zero)
                divq t0, zero, t1
                lda v0, 0(zero)
                lda sp, 16(sp)
                ret
            """,
            entry="__start",
        )
        optimized, _stats = optimize_program(program)
        assert any(i.op == "divq" for i in optimized.instructions)


class TestCodegenIntegration:
    def test_opt_level_gates_the_pipeline(self):
        source = workload("mcf").source()
        baseline = compile_program(source, CodegenOptions(opt_level=0))
        default = compile_program(source)
        assert len(default) == len(baseline)
        optimized = compile_program(source, CodegenOptions(opt_level=1))
        assert len(optimized) < len(baseline)

    def test_assembly_matches_optimized_program(self):
        # What `--emit asm` prints at -O1 assembles to exactly what
        # compile_program executes at -O1.
        source = workload("gzip").source()
        options = CodegenOptions(opt_level=1)
        program = compile_program(source, options)
        reassembled = assemble(
            compile_to_assembly(source, options), entry="__start"
        )
        assert [i.render() for i in reassembled.instructions] == \
            [i.render() for i in program.instructions]
        assert reassembled.labels == program.labels


class TestPrinterRoundTrip:
    @pytest.mark.parametrize("name", ["mcf", "gzip", "crafty"])
    def test_render_assemble_round_trip(self, name):
        program = workload(name).program()
        rebuilt = assemble(render_program(program), entry=program.entry)
        assert [i.render() for i in rebuilt.instructions] == \
            [i.render() for i in program.instructions]
        assert rebuilt.labels == program.labels
        assert bytes(rebuilt.data) == bytes(program.data)
        assert rebuilt.symbols == program.symbols
