"""Dynamic cross-validation of static certificates.

The certifier's verdicts are only worth committing if execution never
contradicts them.  This harness runs a program on the emulator with a
full :class:`~repro.trace.columnar.ColumnarTrace` and checks the two
falsifiable claims of a :class:`~repro.analysis.certify.ProgramCertificate`:

* **depth soundness** — the observed maximum stack depth
  (``STACK_BASE - min(sp)``) never exceeds the certified bound; an
  ``UNBOUNDED`` verdict is vacuously sound;
* **escape soundness** — every *computed-base* stack access (a load or
  store whose base register is neither ``$sp`` nor ``$fp`` but whose
  effective address lies in the live stack region) retires inside a
  function the certificate lists in :meth:`gpr_functions`.  When the
  certificate carries an ``unclean-escape`` flag that set degrades to
  every live function — an address laundered through memory can
  resurface anywhere, and the validation honors exactly that claim.

The observed→static direction is the only one that can be checked:
static sets are upper bounds, so ``observed ⊆ certified`` must hold on
every run while the converse legitimately may not.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.certify import ProgramCertificate, certify_program
from repro.emulator.memory import STACK_BASE, TEXT_BASE
from repro.trace.columnar import FLAG_LOAD, FLAG_STORE, ColumnarTrace
from repro.isa.registers import FP, SP


@dataclass
class ValidationResult:
    """Outcome of validating one certificate against one trace."""

    name: str
    instructions: int
    observed_depth: int
    certified_depth: Optional[int]  # None = UNBOUNDED (vacuously sound)
    depth_ok: bool
    observed_gpr: Tuple[str, ...]
    certified_gpr: Tuple[str, ...]
    escapes_ok: bool
    halted: bool = True
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.depth_ok and self.escapes_ok

    def render(self) -> str:
        mark = "ok" if self.ok else "FAIL"
        bound = (
            f"<= {self.certified_depth}"
            if self.certified_depth is not None else "UNBOUNDED"
        )
        extra = f"; {'; '.join(self.notes)}" if self.notes else ""
        return (
            f"{self.name}: validation {mark} — observed depth "
            f"{self.observed_depth} vs certified {bound}; "
            f"computed-base stack access in "
            f"{list(self.observed_gpr) or 'no'} function(s), certified "
            f"{list(self.certified_gpr) or 'none'} "
            f"({self.instructions} instructions){extra}"
        )

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "instructions": self.instructions,
            "halted": self.halted,
            "observed_depth": self.observed_depth,
            "certified_depth": self.certified_depth,
            "depth_ok": self.depth_ok,
            "observed_gpr": list(self.observed_gpr),
            "certified_gpr": list(self.certified_gpr),
            "escapes_ok": self.escapes_ok,
            "notes": list(self.notes),
        }


def _function_table(certificate: ProgramCertificate
                    ) -> Tuple[List[int], List[str]]:
    """Sorted (start pc, name) arrays for pc→function attribution."""
    if certificate.summary is None:
        return [], []
    functions = certificate.summary.graph.pcfg.functions
    pairs = sorted(
        (TEXT_BASE + 4 * function.start, name)
        for name, function in functions.items()
    )
    return [pc for pc, _name in pairs], [name for _pc, name in pairs]


def _observed_gpr_functions(trace: ColumnarTrace,
                            certificate: ProgramCertificate,
                            floor: int) -> Set[str]:
    """Functions retiring computed-base accesses into the stack region."""
    starts, names = _function_table(certificate)
    if not starts:
        return set()
    observed: Set[str] = set()

    arrays = trace.as_arrays()
    if arrays is not None:
        import numpy as np

        is_mem = (arrays.flags & (FLAG_LOAD | FLAG_STORE)) != 0
        computed = (arrays.base != SP) & (arrays.base != FP) & is_mem
        in_stack = (arrays.addr >= floor) & (arrays.addr < STACK_BASE)
        hits = np.flatnonzero(computed & in_stack)
        if len(hits):
            pcs = np.unique(arrays.pc[hits])
            for pc in pcs.tolist():
                slot = bisect.bisect_right(starts, pc) - 1
                if slot >= 0:
                    observed.add(names[slot])
        return observed

    for index in range(len(trace)):
        flags = trace.flags[index]
        if not flags & (FLAG_LOAD | FLAG_STORE):
            continue
        base = trace.base[index]
        if base == SP or base == FP:
            continue
        addr = trace.addr[index]
        if not floor <= addr < STACK_BASE:
            continue
        slot = bisect.bisect_right(starts, trace.pc[index]) - 1
        if slot >= 0:
            observed.add(names[slot])
    return observed


def validate_certificate(certificate: ProgramCertificate,
                         trace: ColumnarTrace,
                         halted: bool = True) -> ValidationResult:
    """Check one certificate against one execution trace."""
    if len(trace):
        floor = min(trace.sp)
        observed_depth = STACK_BASE - floor
    else:
        floor = STACK_BASE
        observed_depth = 0

    depth_ok = (
        certificate.depth_bound is None
        or observed_depth <= certificate.depth_bound
    )

    certified_gpr = set(certificate.gpr_functions())
    observed_gpr = _observed_gpr_functions(trace, certificate, floor)
    escapes_ok = observed_gpr <= certified_gpr

    result = ValidationResult(
        name=certificate.name,
        instructions=len(trace),
        observed_depth=observed_depth,
        certified_depth=certificate.depth_bound,
        depth_ok=depth_ok,
        observed_gpr=tuple(sorted(observed_gpr)),
        certified_gpr=tuple(sorted(certified_gpr)),
        escapes_ok=escapes_ok,
        halted=halted,
    )
    if not depth_ok:
        result.notes.append(
            f"observed depth {observed_depth} EXCEEDS certified "
            f"{certificate.depth_bound}"
        )
    if not escapes_ok:
        rogue = sorted(observed_gpr - certified_gpr)
        result.notes.append(
            f"uncertified computed-base stack access in {rogue}"
        )
    return result


def certify_workload(work, options=None) -> ProgramCertificate:
    """Certificate for one registry workload (static only)."""
    return certify_program(work.program(options), name=work.full_name)


def validate_workload(work, options=None,
                      max_instructions: Optional[int] = None
                      ) -> Tuple[ProgramCertificate, ValidationResult]:
    """Certify one registry workload and validate it on a full run."""
    certificate = certify_workload(work, options)
    trace = ColumnarTrace()
    machine = work.run(
        max_instructions=max_instructions, trace_sink=trace,
        options=options,
    )
    return certificate, validate_certificate(
        certificate, trace, halted=machine.halted
    )


def certify_adversarial(member) -> ProgramCertificate:
    """Certificate for one adversarial program (static only)."""
    return certify_program(member.program(), name=member.name)


def validate_adversarial(member,
                         max_instructions: Optional[int] = 1_000_000
                         ) -> Tuple[ProgramCertificate, ValidationResult]:
    """Certify one adversarial program and validate its claims.

    Even contract-breaking programs must not contradict the verdicts:
    a flagged certificate still carries a depth bound / escape set
    claim (possibly degraded to all-live), and the observed run must
    stay inside it.
    """
    certificate = certify_adversarial(member)
    trace = ColumnarTrace()
    machine = member.run(max_instructions=max_instructions,
                         trace_sink=trace)
    return certificate, validate_certificate(
        certificate, trace, halted=machine.halted
    )


def render_validations(results: Sequence[ValidationResult]) -> str:
    lines = [result.render() for result in results]
    failed = [result.name for result in results if not result.ok]
    footer = f"{len(results)} run(s) validated"
    footer += (
        " — FAIL: " + ", ".join(failed) if failed else ", all sound"
    )
    lines.append(footer)
    return "\n".join(lines)


__all__ = [
    "ValidationResult",
    "certify_adversarial",
    "certify_workload",
    "render_validations",
    "validate_adversarial",
    "validate_certificate",
    "validate_workload",
]
