"""Stress tests for tricky code-generation paths.

These target the mechanisms most likely to harbour subtle register-
allocation bugs: temp-stack spilling around calls, pinned entries,
logical-operator joins, deep argument expressions, and the placeholder
frame patching.
"""

from repro.emulator import run_program
from repro.lang import CodegenOptions, compile_program, compile_to_assembly


def outputs(source, options=None):
    machine, _ = run_program(
        compile_program(source, options), max_instructions=5_000_000
    )
    assert machine.halted
    return machine.output


class TestTempSpilling:
    def test_calls_inside_deep_expressions(self):
        """Live temporaries must survive nested calls (spill_all)."""
        assert outputs(
            """
            int f(int x) { return x + 1; }
            int main() {
                int r = (1 + f(2)) * (3 + f(4)) + (5 + f(6)) * (7 + f(8));
                print(r);
                return 0;
            }
            """
        ) == [(1 + 3) * (3 + 5) + (5 + 7) * (7 + 9)]

    def test_call_results_feed_call_arguments(self):
        assert outputs(
            """
            int add(int a, int b) { return a + b; }
            int main() {
                print(add(add(1, 2), add(add(3, 4), add(5, 6))));
                return 0;
            }
            """
        ) == [21]

    def test_six_argument_call_with_expression_args(self):
        assert outputs(
            """
            int mix(int a, int b, int c, int d, int e, int f) {
                return a - b + c - d + e - f;
            }
            int main() {
                int x = 10;
                print(mix(x + 1, x * 2, x - 3, x / 2, x % 3, -x));
                return 0;
            }
            """
        ) == [11 - 20 + 7 - 5 + 1 + 10]

    def test_spill_slots_reused_across_statements(self):
        """Frame should not grow linearly with statement count."""
        statements = "\n".join(
            f"total += (a && b) + (a || {i});" for i in range(30)
        )
        source = f"""
        int main() {{
            int a = 1;
            int b = 0;
            int total = 0;
            {statements}
            print(total);
            return 0;
        }}
        """
        asm = compile_to_assembly(source)
        frame_sizes = [
            int(line.split("-")[1].split("(")[0])
            for line in asm.splitlines()
            if "lda sp, -" in line
        ]
        assert max(frame_sizes) < 200  # slots recycled, not accumulated
        # each statement adds (1 && 0) + (1 || i) == 0 + 1
        assert outputs(source) == [30]


class TestLogicalJoins:
    def test_nested_logical_operators(self):
        assert outputs(
            """
            int main() {
                int a = 1;
                int b = 0;
                int c = 5;
                print((a && b) || (c && (a || b)));
                print(((a || b) && (b || c)) && a);
                print(!(a && b) && !(b || 0));
                return 0;
            }
            """
        ) == [1, 1, 1]

    def test_short_circuit_prevents_side_effect_crash(self):
        assert outputs(
            """
            int divide(int a, int b) { return a / b; }
            int main() {
                int zero_val = 0;
                int guard = 0;
                print(guard && divide(1, zero_val));
                print((guard || 1) && divide(10, 5) == 2);
                return 0;
            }
            """
        ) == [0, 1]

    def test_logical_inside_loop_condition(self):
        assert outputs(
            """
            int main() {
                int i = 0;
                int hits = 0;
                while (i < 50 && hits < 5) {
                    if (i % 7 == 0 || i % 11 == 0) { hits += 1; }
                    i += 1;
                }
                print(i);
                print(hits);
                return 0;
            }
            """
        ) == [22, 5]  # hits: i = 0, 7, 11, 14, 21; exits with i == 22


class TestFrameLayout:
    def test_large_array_does_not_displace_hot_slots(self):
        """Scalars and spills must sit below the array (near $sp)."""
        source = """
        int work(int seed) {
            int big[512];
            big[seed & 511] = seed;
            int acc = 0;
            for (int i = 0; i < 4; i += 1) { acc += big[(seed + i) & 511]; }
            return acc;
        }
        int main() { print(work(7)); return 0; }
        """
        # With promotion disabled the incoming argument spills to a
        # frame slot, which must sit below the 4 KB array (near $sp).
        options = CodegenOptions(promoted_locals=0, fp_frames=False)
        asm = compile_to_assembly(source, options)
        spill_lines = [
            line for line in asm.splitlines()
            if "stq a0," in line
        ]
        assert spill_lines
        displacement = int(spill_lines[0].split(",")[1].strip().split("(")[0])
        assert displacement < 64
        assert outputs(source, options) == [7]

    def test_multiple_arrays_have_distinct_regions(self):
        assert outputs(
            """
            int main() {
                int a[4];
                int b[4];
                for (int i = 0; i < 4; i += 1) { a[i] = i; b[i] = 10 + i; }
                int total = 0;
                for (int i = 0; i < 4; i += 1) { total += a[i] * b[i]; }
                print(total);
                return 0;
            }
            """
        ) == [0 * 10 + 1 * 11 + 2 * 12 + 3 * 13]

    def test_recursive_function_with_array_and_calls(self):
        assert outputs(
            """
            int helper(int x) { return x * 2; }
            int walk(int depth) {
                int scratch[8];
                for (int i = 0; i < 8; i += 1) {
                    scratch[i] = helper(depth + i);
                }
                if (depth == 0) { return scratch[0]; }
                return scratch[depth & 7] + walk(depth - 1);
            }
            int main() { print(walk(6)); return 0; }
            """
        ) == [sum(2 * (d + (d & 7)) for d in range(1, 7)) + 0]


class TestPromotionInteractions:
    def test_address_taken_locals_never_promoted(self):
        """&x forces x into memory even when it is hot."""
        source = """
        int bump(int *p) { p[0] += 1; return 0; }
        int main() {
            int hot = 0;
            for (int i = 0; i < 100; i += 1) {
                bump(&hot);
            }
            print(hot);
            return 0;
        }
        """
        for promoted in (0, 6):
            assert outputs(
                source, CodegenOptions(promoted_locals=promoted)
            ) == [100]

    def test_promoted_values_survive_calls(self):
        assert outputs(
            """
            int noisy() { return 999; }
            int main() {
                int keep = 5;
                int total = 0;
                for (int i = 0; i < 10; i += 1) {
                    noisy();
                    total += keep;   // must still be 5 after the call
                }
                print(total);
                return 0;
            }
            """
        ) == [50]
