"""Static SVF-traffic predictor (repro.analysis.predict) tests."""

from repro.analysis.predict import predict_program
from repro.harness.prediction import check_workload
from repro.isa import Instruction
from repro.isa.assembler import assemble
from repro.isa.registers import SP
from repro.workloads import workload


class TestStaticBounds:
    def test_workload_program_is_analyzable(self):
        prediction = predict_program(workload("mcf").program())
        assert prediction.analyzable and not prediction.reasons
        assert prediction.functions
        for bounds in prediction.functions.values():
            assert bounds.frame_bytes >= 0
            # The union bounds dominate their parts.
            assert bounds.fill_avoid_bound >= bounds.full_store_granules
            assert bounds.writeback_kill_bound >= bounds.store_granules
            assert bounds.full_store_granules <= bounds.store_granules
            # A granule can only be validated fill-free if it can also
            # be dirtied: the fill bound never exceeds the kill bound.
            assert bounds.fill_avoid_bound <= bounds.writeback_kill_bound

    def test_totals_sum_over_functions(self):
        prediction = predict_program(workload("gzip").program())
        assert prediction.total_fill_avoid_bound == sum(
            p.fill_avoid_bound for p in prediction.functions.values()
        )
        assert prediction.total_writeback_kill_bound == sum(
            p.writeback_kill_bound for p in prediction.functions.values()
        )


class TestUnanalyzable:
    def test_frame_errors_poison_the_prediction(self):
        program = workload("mcf").program()
        for index, instruction in enumerate(program.instructions):
            if instruction.is_sp_adjust and instruction.imm > 0:
                program.instructions[index] = Instruction(
                    "lda", rd=SP, rb=SP, imm=instruction.imm + 16
                )
                break
        prediction = predict_program(program)
        assert not prediction.analyzable
        assert prediction.reasons

    def test_misaligned_frame_is_rejected(self):
        # Granule attribution assumes 8-byte-aligned $sp motion.
        program = assemble(
            """
            .text
            __start:
                bsr main
                halt
            main:
                lda sp, -12(sp)
                lda v0, 0(zero)
                lda sp, 12(sp)
                ret
            """,
            entry="__start",
        )
        prediction = predict_program(program)
        assert not prediction.analyzable
        assert any("granule-aligned" in r for r in prediction.reasons)

    def test_escaping_stack_address_is_rejected(self):
        # A stack address stored to non-stack memory can outlive its
        # frame; per-activation attribution is no longer sound.
        program = assemble(
            """
            .data
            cell: .quad 0

            .text
            __start:
                bsr main
                halt
            main:
                lda sp, -16(sp)
                lda t0, 8(sp)
                lda t1, cell
                stq t0, 0(t1)
                lda v0, 0(zero)
                lda sp, 16(sp)
                ret
            """,
            entry="__start",
        )
        prediction = predict_program(program)
        assert not prediction.analyzable
        assert any("escapes" in r for r in prediction.reasons)


class TestDynamicCrossCheck:
    def test_bounds_dominate_full_run_measurements(self):
        # The tentpole soundness property on one full workload run:
        # predicted >= measured for both counters at both levels, with
        # bit-identical outputs and reduced $sp traffic at -O1.
        row = check_workload("mcf")
        assert row.bounds_hold
        assert row.outputs_identical
        assert row.traffic_reduced
        for level in (0, 1):
            m = row.levels[level]
            assert m.analyzable and m.halted
            assert m.measured_fills_avoided <= m.predicted_fills_avoided
            assert (m.measured_writebacks_killed
                    <= m.predicted_writebacks_killed)

    def test_bounds_hold_under_window_pressure(self):
        # A tiny SVF slides its window constantly (evictions strip
        # freshness); the static bounds must still dominate.
        row = check_workload(
            "gzip", max_instructions=150_000, capacity_bytes=256
        )
        assert row.bounds_hold
