"""MiniC: the workload-definition language and its compiler."""

from repro.lang.codegen import (
    CodegenError,
    CodegenOptions,
    CodeGenerator,
    compile_program,
    compile_to_assembly,
)
from repro.lang.interpreter import Interpreter, InterpreterError, interpret
from repro.lang.lexer import LexerError, Token, tokenize
from repro.lang.parser import ParseError, parse
from repro.lang.semantics import (
    BUILTINS,
    FunctionInfo,
    SemanticError,
    Symbol,
    analyze,
)

__all__ = [
    "BUILTINS",
    "CodeGenerator",
    "CodegenError",
    "CodegenOptions",
    "FunctionInfo",
    "Interpreter",
    "InterpreterError",
    "LexerError",
    "ParseError",
    "SemanticError",
    "Symbol",
    "Token",
    "analyze",
    "compile_program",
    "compile_to_assembly",
    "interpret",
    "parse",
    "tokenize",
]
