"""Optimizer pipeline over assembled programs (``-O1``).

:func:`optimize_program` drives the four dataflow passes of
:mod:`repro.lang.opt.passes` to a fixpoint:

1. repeat { redundant-load forwarding; dead-store elimination;
   register dead-code elimination; rebuild } until a round makes no
   edits — each rebuild invalidates the analyses, so the loop re-solves
   from scratch per round;
2. run frame-slot coalescing once at the fixpoint (it creates new
   store-overwrite patterns), then return to step 1 to clean up.

Soundness gating is **per function**, fed by the certifier's
interprocedural facts (:mod:`repro.analysis.summaries`):

* a function is *register-eligible* when it and every transitive
  callee are individually analyzable — no CFG anomaly that breaks edge
  reconstruction, no ``sp-balance``/``frame-bounds`` error, ``$sp``
  tracked throughout, and no indirect call anywhere below it (an
  unknown callee could unbalance ``$sp`` and corrupt the caller's
  frame facts).  Ineligible functions are simply left alone; the rest
  of the program still optimizes.
* the two memory-image-changing passes (dead stores, coalescing)
  additionally require the *whole live program* to be free of
  first-read warnings and unclean escapes: a frame's dead bytes are
  observable by any later callee that reads uninitialized slots, and
  an unclean slot (address escaped to non-stack memory, per the
  certifier's CleanStack-style taint) may be aliased from anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.callgraph import build_call_graph
from repro.analysis.cfg import build_cfg
from repro.analysis.report import Severity
from repro.analysis.stackcheck import (
    FrameContext,
    analyze_frames,
    first_read_pass,
)
from repro.analysis.summaries import summarize_program
from repro.isa.instructions import Program
from repro.lang.opt.ir import EditSet, rebuild_program
from repro.lang.opt.passes import (
    coalesce_slots_pass,
    dead_code_pass,
    dead_store_elimination,
    forward_loads_pass,
)

__all__ = ["OptStats", "optimize_program"]

#: CFG anomalies that leave edges unreconstructed; a function carrying
#: one cannot be analyzed and is never optimized.
_FATAL_ANOMALIES = frozenset({
    "escaping-branch", "indirect-jump", "fallthrough-exit",
})


@dataclass
class OptStats:
    """What the pipeline did, for reporting and tests."""

    rounds: int = 0
    loads_forwarded: int = 0
    loads_deleted: int = 0
    dead_stores_deleted: int = 0
    dead_code_deleted: int = 0
    slots_coalesced: int = 0
    #: True when the whole program was left untouched as unanalyzable.
    skipped: bool = False
    #: True when first-read / unclean-escape hazards disabled the
    #: memory-image passes.
    memory_passes_disabled: bool = False
    #: functions left unoptimized by the per-function eligibility gate
    functions_skipped: int = 0

    @property
    def instructions_removed(self) -> int:
        return (
            self.loads_deleted
            + self.dead_stores_deleted
            + self.dead_code_deleted
        )


def _eligibility(program: Program) -> Tuple[Dict[str, bool], bool]:
    """(register-eligible per function, memory passes allowed).

    Computed once per :func:`optimize_program` call on the input
    program: the passes preserve CFG structure, ``$sp`` balance and
    slot liveness, so eligibility cannot change across rounds.
    """
    pcfg = build_cfg(program)
    graph = build_call_graph(pcfg)
    summary = summarize_program(pcfg, graph)

    fatal = {
        anomaly.function
        for anomaly in pcfg.anomalies
        if anomaly.kind in _FATAL_ANOMALIES
    }
    self_ok = {
        name: (
            name not in fatal
            and function_summary.sp_tracked
            and function_summary.error_count == 0
        )
        for name, function_summary in summary.functions.items()
    }

    register_ok: Dict[str, bool] = {}
    for name in summary.functions:
        ok = self_ok[name] and name not in graph.unknown_callers
        if ok:
            for callee in graph.transitive_callees(name):
                if (
                    not self_ok.get(callee, False)
                    or callee in graph.unknown_callers
                ):
                    ok = False
                    break
        register_ok[name] = ok

    # Memory-image hazards are program-wide: a removed dead store is
    # observable by any later frame that reads uninitialized slots,
    # and an unclean slot may be aliased from any function.  Dead
    # functions cannot observe anything, so only the live set counts —
    # unless indirect calls make liveness itself uncertain.
    if graph.unknown_callers:
        live = set(summary.functions)
    else:
        live = summary.live()
    memory_safe = not any(
        summary.functions[name].first_reads
        or summary.functions[name].has_unclean
        for name in live
    )
    return register_ok, memory_safe


def _analyze(program: Program, register_ok: Dict[str, bool]
             ) -> List[FrameContext]:
    """Fresh frame contexts for the eligible functions of ``program``.

    Re-checks each function defensively: if an edit somehow broke
    balance or tracking, the function drops out for the round instead
    of being optimized on bad facts.
    """
    pcfg = build_cfg(program)
    contexts: List[FrameContext] = []
    for name, function in pcfg.functions.items():
        if not register_ok.get(name, False):
            continue
        context, diagnostics = analyze_frames(function)
        if not context.sp_tracked or any(
            d.severity is Severity.ERROR for d in diagnostics
        ):
            continue
        contexts.append(context)
    return contexts


def optimize_program(
    program: Program, max_rounds: int = 10
) -> Tuple[Program, OptStats]:
    """Run the ``-O1`` pipeline; returns the new program and stats.

    The input program is never mutated; when no optimization applies it
    is returned as-is.
    """
    stats = OptStats()
    register_ok, memory_safe = _eligibility(program)
    stats.functions_skipped = sum(
        1 for eligible in register_ok.values() if not eligible
    )
    if not any(register_ok.values()):
        stats.skipped = True
        return program, stats
    if not memory_safe:
        stats.memory_passes_disabled = True

    coalesced = False
    while stats.rounds < max_rounds:
        contexts = _analyze(program, register_ok)
        if not contexts:
            stats.skipped = stats.rounds == 0
            break
        # Defensive per-round re-check: the passes cannot introduce
        # first-reads, but bad facts here would silently corrupt code.
        round_memory_safe = memory_safe and not any(
            first_read_pass(context) for context in contexts
        )
        edits = EditSet()
        for context in contexts:
            counts = forward_loads_pass(context, edits)
            stats.loads_forwarded += counts["forwarded"]
            stats.loads_deleted += counts["deleted"]
            if round_memory_safe:
                stats.dead_stores_deleted += dead_store_elimination(
                    context, edits
                )
            stats.dead_code_deleted += dead_code_pass(context, edits)
        if not edits and round_memory_safe and not coalesced:
            coalesced = True
            for context in contexts:
                stats.slots_coalesced += coalesce_slots_pass(context, edits)
        if not edits:
            break
        program = rebuild_program(program, edits)
        stats.rounds += 1
    return program, stats
