"""Property-based differential fuzzing: compiled vs interpreted MiniC.

Hypothesis generates random (but well-formed, terminating) MiniC
programs; the compiled path and the reference interpreter must print
identical output for each.
"""

from hypothesis import given, settings, strategies as st

from repro.emulator import run_program
from repro.lang import compile_program
from repro.lang.interpreter import interpret

VARS = ("a", "b", "c")

_literal = st.integers(-30, 30).map(str)
_variable = st.sampled_from(VARS)
_safe_binop = st.sampled_from(["+", "-", "*", "&", "|", "^", "<", "=="])


def _expr(depth):
    if depth == 0:
        return st.one_of(_literal, _variable)
    sub = _expr(depth - 1)
    binary = st.tuples(sub, _safe_binop, sub).map(
        lambda t: f"({t[0]} {t[1]} {t[2]})"
    )
    shift = st.tuples(sub, st.sampled_from(["<<", ">>"]),
                      st.integers(0, 5)).map(
        lambda t: f"({t[0]} {t[1]} {t[2]})"
    )
    unary = st.tuples(st.sampled_from(["-", "~", "!"]), sub).map(
        lambda t: f"({t[0]}{t[1]})"
    )
    return st.one_of(sub, binary, shift, unary)


def _statement(depth):
    assign = st.tuples(_variable, _expr(2)).map(
        lambda t: f"{t[0]} = {t[1]};"
    )
    if depth == 0:
        return assign
    sub = st.lists(_statement(depth - 1), min_size=1, max_size=3).map(
        " ".join
    )
    if_statement = st.tuples(_expr(1), sub, sub).map(
        lambda t: f"if ({t[0]}) {{ {t[1]} }} else {{ {t[2]} }}"
    )
    # Bounded for loop: always terminates.
    loop = st.tuples(st.integers(1, 6), sub).map(
        lambda t:
        f"for (int i{depth} = 0; i{depth} < {t[0]}; i{depth} += 1) "
        f"{{ {t[1]} }}"
    )
    return st.one_of(assign, if_statement, loop)


_program = st.lists(_statement(2), min_size=1, max_size=6).map(
    lambda statements: (
        "int main() { int a = 1; int b = 2; int c = 3; "
        + " ".join(statements)
        + " print(a); print(b); print(c); return 0; }"
    )
)


class TestDifferentialFuzz:
    @settings(max_examples=60, deadline=None)
    @given(_program)
    def test_compiled_matches_interpreted(self, source):
        machine, _ = run_program(
            compile_program(source), max_instructions=2_000_000
        )
        assert machine.halted
        reference = interpret(source, max_steps=5_000_000)
        assert machine.output == reference.output

    @settings(max_examples=25, deadline=None)
    @given(_program)
    def test_codegen_options_do_not_change_output(self, source):
        from repro.lang import CodegenOptions

        outputs = []
        for options in (
            CodegenOptions(),
            CodegenOptions(promoted_locals=0, fp_frames=False),
        ):
            machine, _ = run_program(
                compile_program(source, options),
                max_instructions=2_000_000,
            )
            assert machine.halted
            outputs.append(machine.output)
        assert outputs[0] == outputs[1]
