"""Columnar (struct-of-arrays) dynamic-trace IR.

A full run shuttles 10^5-10^6 per-instruction records through the
emulator, the timing model and the traffic model.  Boxing each one as a
:class:`~repro.trace.records.TraceRecord` costs an object allocation
plus ~18 attribute stores on the way in and as many attribute loads on
the way out.  :class:`ColumnarTrace` stores the same information as
fourteen flat, append-only columns (``array``/``bytearray``), so:

* the emulator appends raw integers straight into the columns
  (``Machine.run`` has a dedicated fast path);
* the timing and traffic models read fields by column index without
  materializing records;
* serialization writes each column as a single ``tobytes`` blob.

Column layout (one entry per retired instruction)::

    pc       array('Q')   instruction address
    opcode   bytearray    opcode number (repro.isa.encoding.OPCODE_NUMBERS)
    flags    bytearray    packed booleans, see FLAG_* below
    size     bytearray    memory access size in bytes (0 for non-memory)
    base     array('b')   base register of a memory op, -1 = none
    dst      array('b')   destination register, -1 = none
    nsrc     bytearray    number of source registers (0..2)
    src0     bytearray    first source register (0 when unused)
    src1     bytearray    second source register (0 when unused)
    disp     array('q')   displacement / full ALU immediate
    spimm    array('q')   $sp-adjust immediate (lda $sp, imm($sp)), else 0
    addr     array('Q')   effective address of a memory op (0 otherwise)
    next_pc  array('Q')   address of the next retired instruction
    sp       array('Q')   $sp value at retirement

The record ``index`` is implicit: it is the position in the columns.
:meth:`records` (and ``__iter__``/``__getitem__``) materialize
:class:`TraceRecord` views on demand, so every legacy consumer — the
prediction harness, tests — keeps working on a ``ColumnarTrace``
unchanged; the Figure 1-3 analyses consume columns in batch (see
:mod:`repro.trace.analysis`).

When numpy is importable, :meth:`ColumnarTrace.as_arrays` additionally
exposes the columns as zero-copy ``ndarray`` views (the optional
``repro[fast]`` backend); the pure-python column walk remains the
reference implementation and the two are differentially gated by
``tests/test_analysis_columnar.py``.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List, Optional

from repro.isa.encoding import OPCODE_NAMES, OPCODE_NUMBERS
from repro.isa.instructions import OPCODES
from repro.trace.records import TraceRecord

try:  # optional fast backend (repro[fast]); never required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via set_numpy_enabled
    _np = None

#: Runtime switch for the numpy backend (see :func:`set_numpy_enabled`).
_NUMPY_ENABLED = True


def numpy_available() -> bool:
    """True when the optional numpy column backend is importable."""
    return _np is not None


def numpy_enabled() -> bool:
    """True when :meth:`ColumnarTrace.as_arrays` will return views."""
    return _np is not None and _NUMPY_ENABLED


def set_numpy_enabled(enabled: bool) -> bool:
    """Toggle the numpy backend at runtime; returns the previous state.

    The pure-python column walk is the reference implementation, so
    benchmarks and the differential gate use this to time/compare both
    paths in one process.  Enabling has no effect when numpy is not
    importable.
    """
    global _NUMPY_ENABLED
    previous = _NUMPY_ENABLED
    _NUMPY_ENABLED = bool(enabled)
    return previous

#: Packed ``flags`` column bits (also the on-disk encoding).
FLAG_LOAD = 1
FLAG_STORE = 2
FLAG_BRANCH = 4
FLAG_CONDITIONAL = 8
FLAG_TAKEN = 16
FLAG_SP_UPDATE = 32

#: op_class per opcode number, indexed by OPCODE_NUMBERS (index 0 unused).
OPCODE_CLASSES = [None] + [OPCODES[name].op_class for name in OPCODES]

class ColumnArrays:
    """Zero-copy ndarray views over one :class:`ColumnarTrace`.

    Same attribute names as the trace's columns; dtypes mirror the
    column element types (``uint64`` for addresses, ``int64`` for
    signed immediates, ``int8`` for register numbers, ``uint8`` for
    byte columns).  The views alias the trace's buffers directly, so
    they are only valid until the next ``append`` to the trace.
    """

    __slots__ = (
        "pc",
        "opcode",
        "flags",
        "size",
        "base",
        "dst",
        "nsrc",
        "src0",
        "src1",
        "disp",
        "spimm",
        "addr",
        "next_pc",
        "sp",
    )


#: numpy dtype name per column (keyed like ``ColumnarTrace.__slots__``).
_COLUMN_DTYPES = {
    "pc": "uint64",
    "opcode": "uint8",
    "flags": "uint8",
    "size": "uint8",
    "base": "int8",
    "dst": "int8",
    "nsrc": "uint8",
    "src0": "uint8",
    "src1": "uint8",
    "disp": "int64",
    "spimm": "int64",
    "addr": "uint64",
    "next_pc": "uint64",
    "sp": "uint64",
}


_FIELDS = (
    "index",
    "pc",
    "op",
    "op_class",
    "srcs",
    "dst",
    "is_load",
    "is_store",
    "addr",
    "size",
    "base_reg",
    "displacement",
    "is_branch",
    "is_conditional",
    "taken",
    "next_pc",
    "sp_value",
    "sp_update",
    "sp_update_immediate",
)


class ColumnarTrace:
    """A dynamic instruction trace stored column-wise.

    Implements the trace-sink protocol (``append``) for legacy
    producers and the sequence protocol (``len``/``iter``/indexing)
    for legacy consumers; the hot paths bypass both and touch the
    columns directly.
    """

    __slots__ = (
        "pc",
        "opcode",
        "flags",
        "size",
        "base",
        "dst",
        "nsrc",
        "src0",
        "src1",
        "disp",
        "spimm",
        "addr",
        "next_pc",
        "sp",
    )

    def __init__(self):
        self.pc = array("Q")
        self.opcode = bytearray()
        self.flags = bytearray()
        self.size = bytearray()
        self.base = array("b")
        self.dst = array("b")
        self.nsrc = bytearray()
        self.src0 = bytearray()
        self.src1 = bytearray()
        self.disp = array("q")
        self.spimm = array("q")
        self.addr = array("Q")
        self.next_pc = array("Q")
        self.sp = array("Q")

    # ------------------------------------------------------------ sink
    def append(self, record: TraceRecord) -> None:
        """Trace-sink protocol: pack one :class:`TraceRecord`."""
        flags = 0
        if record.is_load:
            flags |= FLAG_LOAD
        if record.is_store:
            flags |= FLAG_STORE
        if record.is_branch:
            flags |= FLAG_BRANCH
        if record.is_conditional:
            flags |= FLAG_CONDITIONAL
        if record.taken:
            flags |= FLAG_TAKEN
        if record.sp_update:
            flags |= FLAG_SP_UPDATE
        srcs = record.srcs
        nsrc = len(srcs)
        self.pc.append(record.pc)
        self.opcode.append(OPCODE_NUMBERS[record.op])
        self.flags.append(flags)
        self.size.append(record.size)
        self.base.append(-1 if record.base_reg is None else record.base_reg)
        self.dst.append(-1 if record.dst is None else record.dst)
        self.nsrc.append(nsrc)
        self.src0.append(srcs[0] if nsrc > 0 else 0)
        self.src1.append(srcs[1] if nsrc > 1 else 0)
        self.disp.append(record.displacement)
        self.spimm.append(record.sp_update_immediate)
        self.addr.append(record.addr)
        self.next_pc.append(record.next_pc)
        self.sp.append(record.sp_value)

    @classmethod
    def from_records(cls, records: Iterable) -> "ColumnarTrace":
        """Pack an iterable of :class:`TraceRecord` into columns."""
        if isinstance(records, cls):
            return records
        trace = cls()
        append = trace.append
        for record in records:
            append(record)
        return trace

    # ---------------------------------------------------- numpy backend
    def as_arrays(self) -> Optional[ColumnArrays]:
        """Zero-copy ndarray views of the columns, or ``None``.

        Returns ``None`` when numpy is unavailable or disabled via
        :func:`set_numpy_enabled` — callers fall back to the
        pure-python column walk.  The views share memory with the
        columns (``np.frombuffer`` over the buffer protocol), so they
        are invalidated by the next ``append``.
        """
        if _np is None or not _NUMPY_ENABLED:
            return None
        views = ColumnArrays()
        for name in ColumnarTrace.__slots__:
            views_array = _np.frombuffer(
                getattr(self, name), dtype=_COLUMN_DTYPES[name]
            )
            setattr(views, name, views_array)
        return views

    # ------------------------------------------------------------ view
    def record_at(self, index: int) -> TraceRecord:
        """Materialize the record at ``index`` (no bounds wrapping)."""
        flags = self.flags[index]
        nsrc = self.nsrc[index]
        if nsrc == 0:
            srcs = ()
        elif nsrc == 1:
            srcs = (self.src0[index],)
        else:
            srcs = (self.src0[index], self.src1[index])
        opcode = self.opcode[index]
        base = self.base[index]
        dst = self.dst[index]
        return TraceRecord(
            index=index,
            pc=self.pc[index],
            op=OPCODE_NAMES[opcode],
            op_class=OPCODE_CLASSES[opcode],
            srcs=srcs,
            dst=None if dst < 0 else dst,
            is_load=bool(flags & FLAG_LOAD),
            is_store=bool(flags & FLAG_STORE),
            addr=self.addr[index],
            size=self.size[index],
            base_reg=None if base < 0 else base,
            displacement=self.disp[index],
            is_branch=bool(flags & FLAG_BRANCH),
            is_conditional=bool(flags & FLAG_CONDITIONAL),
            taken=bool(flags & FLAG_TAKEN),
            next_pc=self.next_pc[index],
            sp_value=self.sp[index],
            sp_update=bool(flags & FLAG_SP_UPDATE),
            sp_update_immediate=self.spimm[index],
        )

    def records(self) -> Iterator[TraceRecord]:
        """Compatibility view: yield one :class:`TraceRecord` per entry."""
        record_at = self.record_at
        for index in range(len(self.pc)):
            yield record_at(index)

    def __len__(self) -> int:
        return len(self.pc)

    def __iter__(self) -> Iterator[TraceRecord]:
        return self.records()

    def __getitem__(self, index):
        if isinstance(index, slice):
            sliced = ColumnarTrace()
            for name in ColumnarTrace.__slots__:
                setattr(sliced, name, getattr(self, name)[index])
            return sliced
        if index < 0:
            index += len(self.pc)
        if not 0 <= index < len(self.pc):
            raise IndexError("trace index out of range")
        return self.record_at(index)

    # ------------------------------------------------------ comparison
    def _key(self, index: int) -> tuple:
        record = self.record_at(index)
        return tuple(getattr(record, name) for name in _FIELDS)

    def __eq__(self, other) -> bool:
        if isinstance(other, ColumnarTrace):
            return all(
                getattr(self, name) == getattr(other, name)
                for name in ColumnarTrace.__slots__
            )
        if isinstance(other, (list, tuple)):
            if len(other) != len(self.pc) or not all(
                isinstance(item, TraceRecord) for item in other
            ):
                return NotImplemented if len(other) else len(self.pc) == 0
            return all(
                self._key(i)
                == tuple(getattr(other[i], name) for name in _FIELDS)
                for i in range(len(self.pc))
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ColumnarTrace {len(self.pc)} records>"


class SharedColumnarTrace(ColumnarTrace):
    """Read-only :class:`ColumnarTrace` view over one shared buffer.

    Every column is a zero-copy ``memoryview`` cast over a single
    packed payload (see ``repro.trace.serialization.pack_shared``), so
    attaching a trace published in ``multiprocessing.shared_memory``
    costs O(1) regardless of trace size — the hot loops (the timing
    walks, the batch analyses, :meth:`as_arrays`) read the columns
    through the buffer protocol exactly as they read ``array`` /
    ``bytearray`` columns.  The view is deliberately immutable: the
    buffer is mapped by many processes, so ``append`` refuses.
    """

    __slots__ = ("_owner",)

    def __init__(self, columns, owner=None):
        for name in ColumnarTrace.__slots__:
            setattr(self, name, columns[name])
        # Keep the shared-memory segment (or other buffer owner) alive
        # exactly as long as any view over it.
        self._owner = owner

    @classmethod
    def from_buffer(cls, buffer, owner=None):
        """Attach to a packed payload; ``None`` if not committed."""
        from repro.trace.serialization import unpack_shared

        columns = unpack_shared(buffer)
        if columns is None:
            return None
        return cls(columns, owner)

    def append(self, record) -> None:
        raise TypeError("SharedColumnarTrace is a read-only view")

    def close(self) -> None:
        """Release the column views, then the owning segment.

        Order matters: a shared-memory owner cannot unmap while the
        column memoryviews still export its buffer, so teardown that
        leaves it to reference-count order can raise ``BufferError``
        from ``SharedMemory.__del__``.  Safe to call twice; the view
        is unusable afterwards.
        """
        for name in ColumnarTrace.__slots__:
            view = getattr(self, name, None)
            if isinstance(view, memoryview):
                view.release()
        owner, self._owner = self._owner, None
        if owner is not None:
            try:
                owner.close()
            except (BufferError, OSError):  # pragma: no cover
                pass

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    @property
    def nbytes(self) -> int:
        """Total payload bytes served by the shared buffer."""
        return sum(
            len(getattr(self, name)) * getattr(self, name).itemsize
            for name in ColumnarTrace.__slots__
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SharedColumnarTrace {len(self.pc)} records>"


def record_fields(record: TraceRecord) -> tuple:
    """All fields of a record as a comparable tuple (test helper)."""
    return tuple(getattr(record, name) for name in _FIELDS)
