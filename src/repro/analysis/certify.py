"""Program-level stack-safety certification (``repro certify``).

Composes the interprocedural summaries of
:mod:`repro.analysis.summaries` into one :class:`ProgramCertificate`:

* **worst-case stack depth** — a byte bound with the call chain that
  attains it, or ``UNBOUNDED`` with a concrete recursion cycle (or
  indirect-call site) as witness;
* **per-slot escape classification** — every address-taken frame slot
  is ``local-escape`` (address never leaves the function),
  ``callee-shared`` (handed down a call edge), or ``unclean`` (stored
  to memory outside the stack — CleanStack's unclean objects, the
  aliases the SVF can only catch dynamically);
* **LIFO-discipline proof or counterexample** — the program obeys
  LIFO iff no live function breaks ``$sp`` balance or frame bounds
  and the CFG reconstruction is structurally sound; a violation comes
  with the entry→function call path plus the offending instruction;
* **per-function integrity/confidentiality** — the stack-safety
  lattice of arXiv 2105.00417: a function's frame has integrity
  unless stack errors (violated) or unclean aliases (unknown) exist,
  and is confidential unless it reads frame memory it never wrote
  (a first-read exposes another frame's dead values).

Verdict severity is two-tier.  **Hard flags** (``lifo-violation``,
``structural``, ``unclean-escape``) mean the stack contract the SVF
relies on is broken or unverifiable — ``repro certify`` exits 1.
**Soft flags** (``unbounded-depth``, ``unknown-callee``,
``untracked-sp``) are honest admissions: recursion is legal (four of
the thirteen registry workloads recurse) but admits no static bound,
so the certificate says ``UNBOUNDED`` instead of guessing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import build_call_graph
from repro.analysis.cfg import build_cfg
from repro.analysis.summaries import (
    FunctionSummary,
    ProgramSummary,
    SLOT_SHARED,
    SLOT_UNCLEAN,
    summarize_program,
)
from repro.isa.instructions import Program

#: Flag kinds that break certification (exit code 1).
HARD_FLAGS = frozenset({"lifo-violation", "structural", "unclean-escape"})

#: CFG anomaly kinds that make a function structurally uncertifiable.
_STRUCTURAL_ANOMALIES = frozenset({
    "escaping-branch", "fallthrough-exit", "indirect-jump",
})


@dataclass(frozen=True)
class SafetyFlag:
    """One certification finding, with its counterexample call path."""

    kind: str
    function: str
    index: int  # program-wide instruction index (-1: whole function)
    message: str
    #: entry → function call chain (recursion cycles repeat the head)
    path: Tuple[str, ...] = ()

    @property
    def hard(self) -> bool:
        return self.kind in HARD_FLAGS

    def render(self) -> str:
        location = (
            f"{self.function}+{self.index}" if self.index >= 0
            else self.function
        )
        via = f" via {'→'.join(self.path)}" if self.path else ""
        return f"{self.kind} [{location}]{via}: {self.message}"

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "hard": self.hard,
            "function": self.function,
            "index": self.index,
            "message": self.message,
            "path": list(self.path),
        }


@dataclass(frozen=True)
class FunctionVerdict:
    """The certifier's per-function row."""

    name: str
    live: bool
    recursive: bool
    local_depth: int
    worst_depth: Optional[int]
    slot_classes: Dict[int, str]
    gpr_access: bool
    receives_stack: bool
    integrity: str  # "ok" | "unknown" | "violated"
    confidentiality: str  # "ok" | "leaky"
    clobbered: int  # |callee-closed clobber set|

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "live": self.live,
            "recursive": self.recursive,
            "local_depth": self.local_depth,
            "worst_depth": self.worst_depth,
            "slots": {
                str(offset): cls
                for offset, cls in sorted(self.slot_classes.items())
            },
            "gpr_access": self.gpr_access,
            "receives_stack": self.receives_stack,
            "integrity": self.integrity,
            "confidentiality": self.confidentiality,
            "clobbered_registers": self.clobbered,
        }


@dataclass
class ProgramCertificate:
    """Whole-program verdicts for one assembled program."""

    name: str
    function_count: int
    instruction_count: int
    depth_bound: Optional[int]  # bytes; None = UNBOUNDED / unknown
    depth_reason: str
    depth_chain: Tuple[str, ...]
    flags: List[SafetyFlag] = field(default_factory=list)
    verdicts: Dict[str, FunctionVerdict] = field(default_factory=dict)
    live: Tuple[str, ...] = ()
    summary: Optional[ProgramSummary] = None  # not serialized

    @property
    def hard_flags(self) -> List[SafetyFlag]:
        return [flag for flag in self.flags if flag.hard]

    @property
    def ok(self) -> bool:
        """True when no hard flag exists (soft flags are allowed)."""
        return not self.hard_flags

    @property
    def lifo_ok(self) -> bool:
        return not any(
            flag.kind in ("lifo-violation", "structural")
            for flag in self.flags
        )

    def depth_text(self) -> str:
        if self.depth_bound is not None:
            return f"depth <= {self.depth_bound} bytes"
        reason = self.depth_reason or "unknown"
        return f"depth UNBOUNDED ({reason})"

    def gpr_functions(self) -> Tuple[str, ...]:
        """Live functions that may touch the stack off a computed base.

        When any unclean escape exists the answer degrades to *every*
        live function: an address laundered through memory can
        resurface anywhere, which is exactly why ``unclean`` is a hard
        flag.  Dynamic validation checks observed computed-base stack
        accesses against this set.
        """
        if any(flag.kind == "unclean-escape" for flag in self.flags):
            return tuple(sorted(self.live))
        return tuple(sorted(
            name for name in self.live
            if name in self.verdicts and self.verdicts[name].gpr_access
        ))

    def summary_line(self) -> str:
        status = "CERTIFIED" if self.ok else "FLAGGED"
        hard = len(self.hard_flags)
        soft = len(self.flags) - hard
        lifo = "LIFO proved" if self.lifo_ok else "LIFO violated"
        return (
            f"{self.name}: {status} — {self.depth_text()}, {lifo}, "
            f"{hard} hard / {soft} soft flag(s) "
            f"({self.function_count} functions, {len(self.live)} live, "
            f"{self.instruction_count} instructions)"
        )

    def render_text(self, verbose: bool = True) -> str:
        lines = [self.summary_line()]
        if self.depth_chain:
            joiner = "→".join(self.depth_chain)
            label = (
                "deepest chain" if self.depth_bound is not None
                else "cycle"
            )
            lines.append(f"  {label}: {joiner}")
        for flag in self.flags:
            lines.append("  " + flag.render())
        if verbose:
            for name in sorted(self.verdicts):
                verdict = self.verdicts[name]
                if not verdict.live:
                    continue
                slots = ", ".join(
                    f"{offset:+d}:{cls}"
                    for offset, cls in sorted(verdict.slot_classes.items())
                ) or "all private"
                depth = (
                    f"{verdict.worst_depth}B"
                    if verdict.worst_depth is not None else "unbounded"
                )
                notes = []
                if verdict.recursive:
                    notes.append("recursive")
                if verdict.gpr_access:
                    notes.append("gpr-access")
                if verdict.receives_stack:
                    notes.append("receives-stack-addr")
                note = f" [{', '.join(notes)}]" if notes else ""
                lines.append(
                    f"  {name}: depth {depth}, slots {slots}, "
                    f"integrity {verdict.integrity}, "
                    f"confidentiality {verdict.confidentiality}{note}"
                )
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "lifo_ok": self.lifo_ok,
            "functions": self.function_count,
            "instructions": self.instruction_count,
            "depth_bound": self.depth_bound,
            "depth_reason": self.depth_reason or None,
            "depth_chain": list(self.depth_chain),
            "live": sorted(self.live),
            "gpr_functions": list(self.gpr_functions()),
            "flags": [flag.to_dict() for flag in self.flags],
            "verdicts": [
                self.verdicts[name].to_dict()
                for name in sorted(self.verdicts)
            ],
        }

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def _depth_chain(summary: ProgramSummary) -> Tuple[str, ...]:
    """The call chain attaining the certified bound (bounded case)."""
    root = summary.root
    if root is None or summary.functions[root].worst_depth is None:
        return ()
    chain = [root]
    current = summary.functions[root]
    while True:
        best: Optional[FunctionSummary] = None
        best_total = current.local_depth
        for _index, callee, sp_at in current.calls:
            if callee is None or sp_at is None:
                break
            callee_summary = summary.functions[callee]
            if callee_summary.worst_depth is None:
                break
            total = -sp_at + callee_summary.worst_depth
            if total > best_total:
                best_total = total
                best = callee_summary
        if best is None or best.name in chain:
            break
        chain.append(best.name)
        current = best
    return tuple(chain)


def _live_set(summary: ProgramSummary) -> Set[str]:
    """Reachable functions; everything when indirect calls blind us."""
    live = summary.live()
    if summary.graph.unknown_callers & (live or set(summary.functions)):
        return set(summary.functions)
    return live


def certify_program(program: Program, name: str = "program"
                    ) -> ProgramCertificate:
    """Run the whole-program certifier over one assembled program."""
    pcfg = build_cfg(program)
    graph = build_call_graph(pcfg)
    summary = summarize_program(pcfg, graph)
    live = _live_set(summary)

    depth_bound, depth_reason = summary.program_depth()
    certificate = ProgramCertificate(
        name=name,
        function_count=len(pcfg.functions),
        instruction_count=len(program),
        depth_bound=depth_bound,
        depth_reason=depth_reason,
        depth_chain=_depth_chain(summary),
        live=tuple(sorted(live)),
        summary=summary,
    )

    def path_to(function: str) -> Tuple[str, ...]:
        path = graph.call_path(function)
        return tuple(path) if path else ()

    flags: List[SafetyFlag] = certificate.flags

    # --- structural soundness ---------------------------------------------
    for anomaly in pcfg.anomalies:
        if anomaly.kind == "indirect-call":
            continue  # handled as unknown-callee below
        if anomaly.kind in _STRUCTURAL_ANOMALIES and anomaly.function in live:
            flags.append(SafetyFlag(
                "structural", anomaly.function, anomaly.index,
                anomaly.message, path_to(anomaly.function),
            ))

    # --- LIFO discipline ---------------------------------------------------
    for function_name in sorted(live):
        function_summary = summary.functions[function_name]
        for diagnostic in function_summary.diagnostics:
            if diagnostic.severity.name != "ERROR":
                continue
            flags.append(SafetyFlag(
                "lifo-violation", function_name, diagnostic.index,
                diagnostic.message, path_to(function_name),
            ))

    # --- unclean escapes ---------------------------------------------------
    for function_name in sorted(live):
        function_summary = summary.functions[function_name]
        if not function_summary.has_unclean:
            continue
        offsets = sorted(
            offset for offset, cls in function_summary.slot_classes.items()
            if cls == SLOT_UNCLEAN
        )
        index = (
            function_summary.events_local.unclean[0][0]
            if function_summary.events_local.unclean else -1
        )
        what = (
            f"slot(s) {', '.join(f'{o:+d}' for o in offsets)}"
            if offsets else "a caller stack address"
        )
        flags.append(SafetyFlag(
            "unclean-escape", function_name, index,
            f"{what} escape(s) to non-stack memory; aliases are "
            f"invisible to the stack contract",
            path_to(function_name),
        ))

    # --- depth verdict witnesses ------------------------------------------
    if depth_bound is None:
        if depth_reason == "recursion":
            witness: Tuple[str, ...] = ()
            head = ""
            for function_name in sorted(live & graph.recursive):
                cycle = graph.recursion_cycle(function_name)
                if cycle:
                    prefix = path_to(function_name)
                    witness = tuple(prefix[:-1]) + tuple(cycle)
                    head = function_name
                    break
            flags.append(SafetyFlag(
                "unbounded-depth", head or (summary.root or "?"), -1,
                "recursive call cycle admits no static stack bound",
                witness,
            ))
            if witness and not certificate.depth_chain:
                certificate.depth_chain = witness
        elif depth_reason == "indirect-call":
            for function_name in sorted(graph.unknown_callers & live):
                for site in graph.sites[function_name]:
                    if site.callee is None:
                        flags.append(SafetyFlag(
                            "unknown-callee", function_name, site.index,
                            "indirect call: callee unknown, stack "
                            "depth cannot be bounded",
                            path_to(function_name),
                        ))
                        break
        elif depth_reason and summary.functions:
            head = summary.root or "?"
            flags.append(SafetyFlag(
                "untracked-sp", head, -1,
                f"stack depth unknown ({depth_reason})",
                path_to(head) if summary.root else (),
            ))

    # --- per-function verdicts --------------------------------------------
    for function_name, function_summary in summary.functions.items():
        if function_summary.error_count:
            integrity = "violated"
        elif (
            not function_summary.sp_tracked
            or function_summary.has_unclean
        ):
            integrity = "unknown"
        else:
            integrity = "ok"
        confidentiality = (
            "leaky" if function_summary.first_reads else "ok"
        )
        certificate.verdicts[function_name] = FunctionVerdict(
            name=function_name,
            live=function_name in live,
            recursive=function_summary.recursive,
            local_depth=function_summary.local_depth,
            worst_depth=function_summary.worst_depth,
            slot_classes=dict(function_summary.slot_classes),
            gpr_access=function_summary.gpr_access,
            receives_stack=bool(function_summary.receives_stack),
            integrity=integrity,
            confidentiality=confidentiality,
            clobbered=len(function_summary.clobbered),
        )

    return certificate


def render_certificates(certificates: Sequence[ProgramCertificate],
                        verbose: bool = False) -> str:
    """Render several certificates plus a suite-level footer."""
    blocks = [
        certificate.render_text(verbose=verbose)
        for certificate in certificates
    ]
    hard = sum(len(c.hard_flags) for c in certificates)
    soft = sum(len(c.flags) for c in certificates) - hard
    failed = [c.name for c in certificates if not c.ok]
    footer = (
        f"{len(certificates)} program(s) certified: {hard} hard / "
        f"{soft} soft flag(s)"
    )
    if failed:
        footer += " — FLAGGED: " + ", ".join(failed)
    blocks.append(footer)
    return "\n\n".join(blocks)


__all__ = [
    "HARD_FLAGS",
    "FunctionVerdict",
    "ProgramCertificate",
    "SafetyFlag",
    "certify_program",
    "render_certificates",
]
