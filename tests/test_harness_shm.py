"""Shared-memory trace fan-out: packing, views, cache level, cleanup.

The engine fans functional traces out to workers as packed column
payloads in POSIX shared memory; these tests cover the payload format
(commit-record ordering included), the read-only
:class:`SharedColumnarTrace` view the workers simulate from, the
cache-level ordering in ``cached_trace``, and the engine's segment
hygiene (run-prefix sweep plus the chaos leak check).
"""

import pickle

import pytest

from repro.harness import chaos, parallel as engine
from repro.harness.parallel import (
    EngineOptions,
    ShmTraceCache,
    TaskCell,
    leaked_shm_segments,
    run_cells,
    shm_available,
    sweep_shm_segments,
)
from repro.profiling import PhaseProfiler
from repro.trace.columnar import ColumnarTrace, SharedColumnarTrace
from repro.trace.serialization import (
    SHARED_MAGIC,
    pack_shared,
    shared_payload_size,
    unpack_shared,
)
from repro.uarch.config import table2_config
from repro.uarch.pipeline import simulate
from repro.workloads import (
    get_shm_trace_cache,
    set_shm_trace_cache,
    workload,
)
from repro.workloads.registry import cached_trace, clear_trace_cache

WINDOW = 6_000

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="no usable /dev/shm on this host"
)


@pytest.fixture(scope="module")
def gzip_trace():
    return workload("gzip").trace(max_instructions=WINDOW)


@pytest.fixture()
def packed(gzip_trace):
    buffer = bytearray(shared_payload_size(len(gzip_trace)))
    written = pack_shared(buffer, gzip_trace)
    assert written == len(buffer)
    return buffer


class TestSharedPayload:
    def test_round_trip_is_equal(self, gzip_trace, packed):
        view = SharedColumnarTrace.from_buffer(packed)
        assert view is not None
        assert len(view) == len(gzip_trace)
        assert view == gzip_trace
        # TraceRecord compares by identity; check fields explicitly.
        for index in (0, WINDOW - 1):
            ours = view.record_at(index)
            theirs = gzip_trace.record_at(index)
            for name in type(theirs).__slots__:
                assert getattr(ours, name) == getattr(theirs, name)

    def test_simulation_from_view_is_identical(self, gzip_trace, packed):
        view = SharedColumnarTrace.from_buffer(packed)
        config = table2_config(16).with_svf(mode="svf", ports=2)
        assert simulate(view, config) == simulate(gzip_trace, config)

    def test_view_is_read_only(self, gzip_trace, packed):
        view = SharedColumnarTrace.from_buffer(packed)
        with pytest.raises(TypeError):
            view.append(gzip_trace.record_at(0))

    def test_uncommitted_buffer_reads_as_miss(self, packed):
        # The magic is written last (commit record): zeroing it models
        # a writer SIGKILLed before finishing the pack.
        packed[:6] = b"\x00" * 6
        assert unpack_shared(packed) is None
        assert SharedColumnarTrace.from_buffer(packed) is None

    def test_impossible_count_reads_as_miss(self, packed):
        # A committed header whose count overruns the buffer is torn.
        packed[8:16] = (2**40).to_bytes(8, "little")
        assert packed[:6] == SHARED_MAGIC
        assert unpack_shared(packed) is None

    def test_undersized_buffer_is_rejected(self, gzip_trace):
        buffer = bytearray(shared_payload_size(len(gzip_trace)) - 1)
        with pytest.raises(ValueError):
            pack_shared(buffer, gzip_trace)

    def test_empty_trace_round_trips(self):
        empty = ColumnarTrace()
        buffer = bytearray(shared_payload_size(0))
        pack_shared(buffer, empty)
        view = SharedColumnarTrace.from_buffer(buffer)
        assert view is not None
        assert len(view) == 0


class TestShmTraceCache:
    def test_publish_then_load(self, gzip_trace):
        cache = ShmTraceCache("svf-test-pub-")
        key = ("164.gzip", "graphic", 0, WINDOW)
        try:
            assert cache.load(key) is None
            cache.publish(key, gzip_trace)
            assert cache.publishes == 1
            view = cache.load(key)
            assert isinstance(view, SharedColumnarTrace)
            assert view == gzip_trace
            assert cache.attaches == 1
            assert cache.fanout_bytes > 0
        finally:
            sweep_shm_segments("svf-test-pub-")

    def test_publish_race_keeps_first_copy(self, gzip_trace):
        cache = ShmTraceCache("svf-test-race-")
        key = ("164.gzip", "graphic", 0, WINDOW)
        try:
            cache.publish(key, gzip_trace)
            cache.publish(key, gzip_trace)  # second create loses
            assert cache.publishes == 1
            assert cache.load(key) == gzip_trace
        finally:
            sweep_shm_segments("svf-test-race-")

    def test_shared_views_are_never_republished(self, gzip_trace):
        cache = ShmTraceCache("svf-test-repub-")
        key = ("164.gzip", "graphic", 0, WINDOW)
        try:
            cache.publish(key, gzip_trace)
            view = cache.load(key)
            cache.publish(("other",), view)
            assert cache.publishes == 1
            assert leaked_shm_segments("svf-test-repub-") == [
                cache.segment_name(key)
            ]
        finally:
            sweep_shm_segments("svf-test-repub-")

    def test_cached_trace_uses_shm_level(self, gzip_trace):
        # A trace published under the run prefix is attached by
        # cached_trace before any recompute — the key path workers hit.
        cache = ShmTraceCache("svf-test-level-")
        work = workload("gzip")
        key = (work.name, work.input_name, 0, WINDOW)
        cache.publish(key, gzip_trace)
        previous = get_shm_trace_cache()
        clear_trace_cache()
        set_shm_trace_cache(cache)
        try:
            got = cached_trace(work, WINDOW)
            assert isinstance(got, SharedColumnarTrace)
            assert got == gzip_trace
            assert cache.attaches == 1
        finally:
            set_shm_trace_cache(previous)
            clear_trace_cache()
            sweep_shm_segments("svf-test-level-")

    def test_cached_trace_publishes_on_compute(self):
        cache = ShmTraceCache("svf-test-compute-")
        work = workload("gzip")
        previous = get_shm_trace_cache()
        clear_trace_cache()
        set_shm_trace_cache(cache)
        try:
            cached_trace(work, 2_000)
            assert cache.publishes == 1
            key = (work.name, work.input_name, 0, 2_000)
            assert leaked_shm_segments("svf-test-compute-") == [
                cache.segment_name(key)
            ]
        finally:
            set_shm_trace_cache(previous)
            clear_trace_cache()
            sweep_shm_segments("svf-test-compute-")


class TestSegmentHygiene:
    def test_sweep_removes_only_the_prefix(self, gzip_trace):
        ours = ShmTraceCache("svf-test-mine-")
        theirs = ShmTraceCache("svf-test-theirs-")
        try:
            ours.publish(("a",), gzip_trace)
            theirs.publish(("b",), gzip_trace)
            removed = sweep_shm_segments("svf-test-mine-")
            assert [name for name, _ in removed] == [
                ours.segment_name(("a",))
            ]
            assert removed[0][1] >= shared_payload_size(len(gzip_trace))
            assert leaked_shm_segments("svf-test-mine-") == []
            assert leaked_shm_segments("svf-test-theirs-") != []
        finally:
            sweep_shm_segments("svf-test-mine-")
            sweep_shm_segments("svf-test-theirs-")

    def test_chaos_check_flags_leaks(self, gzip_trace):
        cache = ShmTraceCache("svf-test-leak-")
        report = engine.EngineReport(shm_prefix="svf-test-leak-")
        try:
            cache.publish(("a",), gzip_trace)
            check = chaos.check_no_leaked_shm(report)
            assert not check.ok
            sweep_shm_segments("svf-test-leak-")
            check = chaos.check_no_leaked_shm(report)
            assert check.ok
        finally:
            sweep_shm_segments("svf-test-leak-")

    def test_chaos_check_passes_without_shm(self):
        check = chaos.check_no_leaked_shm(engine.EngineReport())
        assert check.ok
        assert "not used" in check.detail


class TestEngineIntegration:
    def test_pool_payloads_identical_shm_on_and_off(self):
        cells = [
            TaskCell("table3", "164.gzip", 4_000, ()),
            TaskCell("fig5", "164.gzip", 4_000, ()),
        ]

        def run(shared_memory):
            outcomes = run_cells(
                cells,
                EngineOptions(
                    jobs=2, cache_dir=None, shared_memory=shared_memory
                ),
            )
            assert all(outcome.ok for outcome in outcomes)
            return outcomes, engine.last_engine_report()

        with_shm, report_on = run(True)
        without, report_off = run(False)
        for a, b in zip(with_shm, without):
            assert pickle.dumps(a.payload) == pickle.dumps(b.payload)
        assert report_on.shm_prefix is not None
        assert report_off.shm_prefix is None
        assert leaked_shm_segments(report_on.shm_prefix) == []
        assert chaos.check_no_leaked_shm(report_on).ok
        # The end-of-run sweep accounts for what the workers shared.
        assert report_on.shm_segments > 0
        assert report_on.shm_bytes > 0
        # Worker counters ship back in the cell snapshots and render
        # through the standard profiler block (what --profile shows).
        merged = PhaseProfiler()
        for outcome in with_shm:
            merged.merge(outcome.phases)
        rendered = merged.render()
        assert "cache counters:" in rendered
        assert "shm_trace_publishes" in rendered
        totals = merged.counters
        assert totals["shm_trace_publishes"] >= 1
        if "shm_trace_attaches" in totals:
            assert totals["shm_fanout_bytes"] > 0
