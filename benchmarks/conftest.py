"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, prints
it, writes it under ``benchmarks/results/``, and asserts the paper's
qualitative shape.  Window lengths scale with the environment:

* ``REPRO_BENCH_WINDOW`` — instructions per timing simulation
  (default 60 000);
* ``REPRO_BENCH_FWINDOW`` — instructions per functional/traffic
  simulation (default 120 000).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


TIMING_WINDOW = _env_int("REPRO_BENCH_WINDOW", 60_000)
FUNCTIONAL_WINDOW = _env_int("REPRO_BENCH_FWINDOW", 120_000)


@pytest.fixture(scope="session")
def timing_window() -> int:
    return TIMING_WINDOW


@pytest.fixture(scope="session")
def functional_window() -> int:
    return FUNCTIONAL_WINDOW


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def sweep_suite():
    """Run one committed suite descriptor at an overridden window.

    The descriptors under ``benchmarks/suites/`` pin their published
    windows; the benchmark harness re-runs them at the environment's
    window (REPRO_BENCH_WINDOW / REPRO_BENCH_FWINDOW) so CI and dev
    boxes can scale the same suites up or down.
    """
    from dataclasses import replace

    from repro import api

    suites = Path(__file__).parent / "suites"

    def _run(name: str, window: int) -> "api.SweepResult":
        spec = api.load_suite(str(suites / f"{name}.yaml"))
        spec = replace(spec, window=window)
        return api.sweep(spec, api.SweepOptions(jobs=1, use_cache=False))

    return _run


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a rendered artifact and persist it for EXPERIMENTS.md."""

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
