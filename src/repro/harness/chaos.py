"""Deterministic fault injection for the parallel engine and cache.

Every number this reproduction reports flows through
:mod:`repro.harness.parallel` and its :class:`TraceCache`; this module
exists to *prove* the degradation contracts those layers claim, in the
spirit of kill-the-primary workloads: a seeded :class:`FaultPlan` can

* kill a worker process mid-cell (``kill`` — real ``SIGKILL``),
* hang or slow a cell (``hang``/``slow`` — an injected sleep),
* fail a cell (``fail`` — an injected exception),
* truncate or bit-flip on-disk cache entries between runs
  (``truncate``/``bitflip`` via :func:`inject_cache_faults`),

while :func:`run_chaos` drives a real report or sweep under the plan
and checks the invariants the docs promise:

1. output is **byte-identical** to a clean run, or every divergence is
   an explicitly annotated gap;
2. the cache is **never poisoned** — a corrupt entry is never served,
   a valid entry is never lost to a transient error, and a warm re-run
   after the chaos run reproduces the clean bytes exactly;
3. **no worker process outlives the run** (no orphans, no zombies);
4. exit codes stay honest (the CLI maps the verdict to 0/1).

Determinism: which cells a rule hits is decided by a seeded digest of
the rule and the *cell identity* — never by scheduling — and each
(rule, cell) pair fires at most ``times`` times, tracked by an on-disk
claim ledger so the bookkeeping survives the worker being SIGKILLed
mid-fault.  The same plan over the same cells injects the same faults
on every run, at every ``--jobs`` value.

This module is a leaf: it must not import :mod:`repro.harness.parallel`
at module level (the engine imports us for the worker-side hook).
"""

from __future__ import annotations

import errno
import hashlib
import os
import signal
import time
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import profiling

#: Fault kinds a rule may carry.  ``kill``/``hang``/``slow``/``fail``
#: fire inside workers via :func:`on_cell_start`; ``truncate``/
#: ``bitflip`` operate on cache files via :func:`inject_cache_faults`.
FAULT_KINDS = ("kill", "hang", "slow", "fail", "truncate", "bitflip")

#: Cache-entry suffixes :func:`inject_cache_faults` may touch.
CACHE_SUFFIXES = (".trace.bin", ".cell.pkl", ".section.pkl")


class ChaosFault(RuntimeError):
    """An injected cell failure (the ``fail`` fault kind)."""


class ChaosKill(RuntimeError):
    """A simulated worker kill (inline runs can't SIGKILL the host)."""


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: what, whom, how often.

    ``match`` is an ``fnmatch`` pattern over the stable cell key of
    :func:`cell_key` (section, benchmark, window and params all appear
    in it), so a rule can target one exact cell or a whole family.
    ``probability`` thins the matched set via a seeded digest of the
    cell identity — scheduling never changes the selection.  ``times``
    caps how often the rule fires per matching cell (claimed through
    the plan's ledger, so a retry of a once-killed cell runs clean).
    """

    kind: str
    match: str = "*"
    times: int = 1
    #: sleep length for ``hang``/``slow`` faults, in seconds.
    seconds: float = 0.0
    probability: float = 1.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, not {self.kind!r}"
            )
        if self.times < 1:
            raise ValueError(f"times must be >= 1, not {self.times!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], not {self.probability!r}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable set of fault rules.

    ``ledger_dir`` holds the claim tokens that make ``times`` exact
    across worker processes and retries; without one the plan falls
    back to a per-process in-memory ledger (fine for inline runs,
    too weak for a pool — pool runs should always set it).
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()
    ledger_dir: Optional[str] = None

    def worker_rules(self) -> Tuple[Tuple[int, FaultRule], ...]:
        """(index, rule) pairs that fire inside workers."""
        return tuple(
            (index, rule) for index, rule in enumerate(self.rules)
            if rule.kind in ("kill", "hang", "slow", "fail")
        )

    def cache_rules(self) -> Tuple[Tuple[int, FaultRule], ...]:
        """(index, rule) pairs that corrupt cache entries."""
        return tuple(
            (index, rule) for index, rule in enumerate(self.rules)
            if rule.kind in ("truncate", "bitflip")
        )


def cell_key(cell) -> str:
    """Stable, human-readable identity of one task cell.

    Unlike ``cell.label`` this bakes in the window and every param, so
    two sweep rows of the same workload never share a key.
    """
    window_tag = "full" if cell.window is None else str(cell.window)
    params = ",".join(f"{name}={value}" for name, value in cell.params)
    return f"{cell.section}:{cell.benchmark}:w{window_tag}:{params}"


def _digest_fraction(seed: int, rule_index: int, token: str) -> float:
    """Deterministic uniform [0, 1) draw for (seed, rule, token)."""
    digest = hashlib.sha256(
        f"{seed}:{rule_index}:{token}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def _selected(plan: FaultPlan, rule_index: int, rule: FaultRule,
              token: str) -> bool:
    if not fnmatch(token, rule.match):
        return False
    if rule.probability >= 1.0:
        return True
    return _digest_fraction(plan.seed, rule_index, token) < rule.probability


# ---------------------------------------------------------------------------
# The claim ledger: (rule, cell) fires at most ``times`` times
# ---------------------------------------------------------------------------

#: in-memory fallback ledger (per process) when the plan has no dir.
_MEMORY_LEDGER: Dict[str, int] = {}


def _claim(plan: FaultPlan, rule_index: int, token: str,
           times: int) -> bool:
    """Atomically claim one firing slot; False once ``times`` used up.

    On-disk tokens are created with ``O_CREAT | O_EXCL`` so two racing
    workers can never double-claim a slot, and a SIGKILLed worker's
    claim survives its death — exactly what makes ``times=1`` mean
    *once*, not once-per-process-lifetime.
    """
    name = hashlib.sha256(
        f"{rule_index}:{token}".encode("utf-8")
    ).hexdigest()[:32]
    if plan.ledger_dir is None:
        used = _MEMORY_LEDGER.get(name, 0)
        if used >= times:
            return False
        _MEMORY_LEDGER[name] = used + 1
        return True
    root = Path(plan.ledger_dir)
    root.mkdir(parents=True, exist_ok=True)
    for slot in range(times):
        try:
            descriptor = os.open(
                str(root / f"{name}.{slot}"),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            continue
        except OSError:
            return False
        os.close(descriptor)
        return True
    return False


# ---------------------------------------------------------------------------
# Worker-side hook
# ---------------------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None
#: inline runs convert ``kill`` into :class:`ChaosKill` — SIGKILLing
#: the caller's own process is not a fault model, it's a crash.
_SIMULATE_KILL: bool = True


def install(plan: Optional[FaultPlan],
            simulate_kill: bool = True) -> Optional[FaultPlan]:
    """Install ``plan`` for this process; returns the previous plan."""
    global _PLAN, _SIMULATE_KILL
    previous = _PLAN
    _PLAN = plan
    _SIMULATE_KILL = simulate_kill
    return previous


def active_plan() -> Optional[FaultPlan]:
    return _PLAN


def on_cell_start(cell) -> None:
    """Engine hook: apply every matching worker fault to this cell.

    Called by ``_execute_cell`` after the cell's profiler is installed
    (so fault counters ship back in the snapshot) and before the cache
    lookup (so a killed cell's retry exercises the full path).
    """
    plan = _PLAN
    if plan is None:
        return
    token = cell_key(cell)
    for rule_index, rule in plan.worker_rules():
        if not _selected(plan, rule_index, rule, token):
            continue
        if not _claim(plan, rule_index, token, rule.times):
            continue
        profiling.note_counter(f"chaos_{rule.kind}_faults")
        if rule.kind in ("hang", "slow"):
            time.sleep(rule.seconds)
        elif rule.kind == "fail":
            raise ChaosFault(
                f"injected failure (rule {rule_index}, seed {plan.seed})"
            )
        elif rule.kind == "kill":
            if _SIMULATE_KILL:
                raise ChaosKill(
                    f"simulated worker kill (rule {rule_index}, "
                    f"seed {plan.seed})"
                )
            os.kill(os.getpid(), signal.SIGKILL)


# ---------------------------------------------------------------------------
# Cache corruption (between runs)
# ---------------------------------------------------------------------------


def cache_entries(cache_dir: str) -> List[Path]:
    """Every cache entry under ``cache_dir``, sorted for determinism."""
    root = Path(cache_dir)
    if not root.exists():
        return []
    return sorted(
        path for path in root.rglob("*")
        if path.is_file() and path.name.endswith(CACHE_SUFFIXES)
    )


def truncate_entry(path: Path) -> bool:
    """Cut an entry in half (a writer that died mid-write)."""
    size = path.stat().st_size
    if size < 2:
        return False
    data = path.read_bytes()
    path.write_bytes(data[: size // 2])
    return True


def bitflip_entry(path: Path, seed: int = 0) -> bool:
    """Flip one seeded bit (silent media/transport corruption)."""
    data = bytearray(path.read_bytes())
    if not data:
        return False
    fraction = _digest_fraction(seed, 0, str(path.name))
    offset = int(fraction * len(data)) % len(data)
    data[offset] ^= 1 << (int(fraction * 8) % 8)
    path.write_bytes(bytes(data))
    return True


def inject_cache_faults(cache_dir: str, plan: FaultPlan) -> List[str]:
    """Apply the plan's ``truncate``/``bitflip`` rules to a cache dir.

    Selection matches each rule's ``fnmatch`` pattern against the
    entry name and thins by the seeded digest; each rule corrupts at
    most ``times`` entries, walking the sorted listing so the damage
    is reproducible.  Returns the corrupted paths.
    """
    corrupted: List[str] = []
    entries = cache_entries(cache_dir)
    for rule_index, rule in plan.cache_rules():
        hit = 0
        for path in entries:
            if hit >= rule.times:
                break
            if not _selected(plan, rule_index, rule, path.name):
                continue
            if rule.kind == "truncate":
                done = truncate_entry(path)
            else:
                done = bitflip_entry(path, seed=plan.seed)
            if done:
                corrupted.append(str(path))
                hit += 1
    return corrupted


# ---------------------------------------------------------------------------
# Invariant checks and the chaos run harness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosCheck:
    """One verified invariant: name, verdict, human detail."""

    name: str
    ok: bool
    detail: str = ""


@dataclass(frozen=True)
class ChaosOptions:
    """Frozen knobs for one ``repro chaos`` run.

    The target is the report battery over ``benchmarks`` (default) or
    the sweep suite at ``suite``.  ``kills``/``hangs``/``fails`` pick
    how many distinct cells each fault hits (seeded choice over the
    planned cells); ``corrupt`` picks how many cache entries the
    corruption round truncates/bit-flips.  ``work_dir`` hosts the
    cache directories and the claim ledger (``None`` = a fresh
    temporary directory).
    """

    benchmarks: Tuple[str, ...] = ("gzip",)
    suite: Optional[str] = None
    jobs: int = 2
    seed: int = 0
    kills: int = 1
    hangs: int = 1
    fails: int = 1
    corrupt: int = 2
    hang_seconds: float = 30.0
    task_timeout: float = 20.0
    timing_window: int = 1_500
    functional_window: int = 1_500
    concurrent: bool = True
    work_dir: Optional[str] = None

    def __post_init__(self):
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, not {self.jobs!r}")
        if self.benchmarks is not None and not isinstance(
            self.benchmarks, tuple
        ):
            object.__setattr__(self, "benchmarks", tuple(self.benchmarks))


@dataclass
class ChaosResult:
    """Verdict of one chaos run: per-invariant checks plus provenance."""

    checks: List[ChaosCheck] = field(default_factory=list)
    faults_planned: int = 0
    corrupted_entries: List[str] = field(default_factory=list)
    target: str = "report"
    seed: int = 0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "chaos",
            "target": self.target,
            "seed": self.seed,
            "ok": self.ok,
            "faults_planned": self.faults_planned,
            "corrupted_entries": len(self.corrupted_entries),
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "checks": [
                {"name": c.name, "ok": c.ok, "detail": c.detail}
                for c in self.checks
            ],
        }

    def render(self) -> str:
        lines = [
            f"Chaos run — target {self.target}, seed {self.seed}: "
            f"{self.faults_planned} worker faults, "
            f"{len(self.corrupted_entries)} corrupted cache entries"
        ]
        for check in self.checks:
            verdict = "PASS" if check.ok else "FAIL"
            detail = f" — {check.detail}" if check.detail else ""
            lines.append(f"  [{verdict}] {check.name}{detail}")
        lines.append(
            "verdict: all invariants hold" if self.ok
            else "verdict: INVARIANT VIOLATED"
        )
        return "\n".join(lines)


def check_output_invariant(
    baseline: str, chaotic: str, label: str
) -> ChaosCheck:
    """Byte-identical, or every divergence explicitly annotated."""
    if chaotic == baseline:
        return ChaosCheck(
            f"{label}-identical-or-annotated", True,
            "byte-identical to the clean run (faults absorbed by retries)",
        )
    if "(degraded:" in chaotic:
        gaps = chaotic.count("(degraded:")
        return ChaosCheck(
            f"{label}-identical-or-annotated", True,
            f"diverged with {gaps} explicit degradation annotation"
            f"{'s' if gaps != 1 else ''}",
        )
    return ChaosCheck(
        f"{label}-identical-or-annotated", False,
        "output diverged from the clean run with no degradation "
        "annotation — a silent wrong answer",
    )


def check_no_leaked_shm(engine_report) -> ChaosCheck:
    """No shared-memory segment outlives the run that published it.

    Workers publish trace segments under a run-scoped name prefix and
    never unlink them; the engine's end-of-run sweep is the single
    cleanup point.  This check re-scans the prefix *after* the sweep,
    so a segment still present — including one published by a worker
    the chaos harness SIGKILLed mid-run — is a leak.  A run that never
    enabled shared memory passes trivially.
    """
    from repro.harness.parallel import leaked_shm_segments

    prefix = getattr(engine_report, "shm_prefix", None)
    if not prefix:
        return ChaosCheck(
            "no-leaked-shm-segments", True,
            "shared-memory fan-out not used by this run",
        )
    leaked = leaked_shm_segments(prefix)
    if leaked:
        return ChaosCheck(
            "no-leaked-shm-segments", False,
            f"segments survived the cleanup sweep: {', '.join(leaked)}",
        )
    return ChaosCheck(
        "no-leaked-shm-segments", True,
        f"prefix {prefix!r} swept clean "
        f"({engine_report.shm_segments} segments, "
        f"{engine_report.shm_bytes} bytes reclaimed)",
    )


def check_no_orphans(engine_report) -> ChaosCheck:
    """No worker process survives the run (and none was silently lost)."""
    alive = [
        pid for pid in sorted(engine_report.worker_pids)
        if _pid_alive(pid)
    ]
    if alive:
        return ChaosCheck(
            "no-orphan-workers", False,
            f"worker pids still alive after shutdown: {alive}",
        )
    return ChaosCheck(
        "no-orphan-workers", True,
        f"{len(engine_report.worker_pids)} workers spawned, "
        f"{engine_report.recycled} recycled, all reaped",
    )


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError as exc:
        return exc.errno == errno.EPERM
    # Signal 0 succeeded: the pid exists, but a SIGKILLed child that
    # has been reaped cannot reach here; a zombie (dead, unreaped)
    # still counts as a leak.
    return True


def _pick_victims(keys: Sequence[str], seed: int,
                  counts: Dict[str, int]) -> List[FaultRule]:
    """Seeded choice of distinct victim cells for each worker fault.

    Victims are drawn from the sorted key list by the digest, one rule
    per (kind, victim), so the plan is a pure function of (cells,
    seed, counts) and two faults never stack on one cell.
    """
    ordered = sorted(
        sorted(keys),
        key=lambda key: _digest_fraction(seed, 0, key),
    )
    rules: List[FaultRule] = []
    cursor = 0
    for kind in ("kill", "hang", "fail"):
        for _ in range(counts.get(kind, 0)):
            if cursor >= len(ordered):
                break
            rules.append(FaultRule(
                kind=kind,
                match=ordered[cursor],
                times=1,
                seconds=counts.get("hang_seconds", 30.0)
                if kind == "hang" else 0.0,
            ))
            cursor += 1
    return rules


def run_chaos(options: Optional[ChaosOptions] = None,
              progress=None) -> ChaosResult:
    """Drive a real report (or sweep) under a seeded fault plan and
    verify every invariant the harness documents.

    Phases: clean baseline → chaos run (worker kills, hangs, injected
    failures) → repair run (same cache, no faults) → corruption round
    (truncate/bit-flip cache entries, then a warm run) → optional
    concurrent round (two runs racing on one cache dir).  Each phase
    appends :class:`ChaosCheck` verdicts; the CLI maps ``result.ok``
    to the exit code.
    """
    import tempfile

    from repro.harness import parallel as engine

    options = options if options is not None else ChaosOptions()
    note = progress if progress is not None else (lambda message: None)
    started = time.perf_counter()
    work_root = Path(
        options.work_dir if options.work_dir is not None
        else tempfile.mkdtemp(prefix="repro-chaos-")
    )
    work_root.mkdir(parents=True, exist_ok=True)

    target = _SweepTarget(options) if options.suite else (
        _ReportTarget(options)
    )
    result = ChaosResult(target=target.name, seed=options.seed)

    note(f"chaos: clean baseline ({target.name})")
    baseline = target.run(str(work_root / "clean"))

    keys = target.planned_keys()
    rules = _pick_victims(keys, options.seed, {
        "kill": options.kills,
        "hang": options.hangs,
        "fail": options.fails,
        "hang_seconds": options.hang_seconds,
    })
    plan = FaultPlan(
        seed=options.seed,
        rules=tuple(rules),
        ledger_dir=str(work_root / "ledger"),
    )
    result.faults_planned = len(rules)

    chaos_cache = str(work_root / "chaos")
    note(
        f"chaos: injecting {len(rules)} worker faults over "
        f"{len(keys)} cells (jobs {options.jobs})"
    )
    chaotic = target.run(chaos_cache, plan=plan)
    result.checks.append(
        check_output_invariant(baseline, chaotic, target.name)
    )
    engine_report = engine.last_engine_report()
    if engine_report is not None:
        result.checks.append(check_no_orphans(engine_report))
        result.checks.append(check_no_leaked_shm(engine_report))

    note("chaos: repair run (same cache, no faults)")
    repaired = target.run(chaos_cache)
    result.checks.append(ChaosCheck(
        "cache-not-poisoned-after-faults",
        repaired == baseline,
        "warm re-run over the faulted cache reproduces the clean bytes"
        if repaired == baseline else
        "warm re-run over the faulted cache diverged from the clean run",
    ))

    if options.corrupt > 0:
        corruption_plan = FaultPlan(seed=options.seed, rules=(
            FaultRule("truncate", match="*.trace.bin",
                      times=max(1, options.corrupt // 2)),
            FaultRule("bitflip", match="*.pkl", times=options.corrupt),
        ))
        result.corrupted_entries = inject_cache_faults(
            chaos_cache, corruption_plan
        )
        note(
            f"chaos: corrupted {len(result.corrupted_entries)} cache "
            f"entries, re-running warm"
        )
        profiler = profiling.PhaseProfiler()
        after_corruption = target.run(chaos_cache, profiler=profiler)
        result.checks.append(ChaosCheck(
            "corrupt-entries-never-served",
            after_corruption == baseline,
            "corrupt entries degraded to misses; output matches the "
            "clean run" if after_corruption == baseline else
            "output diverged after cache corruption — a corrupt entry "
            "was served",
        ))
        dropped = profiler.counters.get("cache_corrupt_dropped", 0)
        result.checks.append(ChaosCheck(
            "corrupt-entries-dropped",
            not result.corrupted_entries or dropped > 0,
            f"{dropped} corrupt entries detected and unlinked "
            f"(of {len(result.corrupted_entries)} injected)",
        ))

    if options.concurrent:
        note("chaos: two concurrent runs racing on one cache dir")
        texts = _run_concurrently(target, str(work_root / "shared"))
        result.checks.append(ChaosCheck(
            "concurrent-runs-byte-identical",
            all(text == baseline for text in texts),
            "both racing runs reproduce the clean bytes"
            if all(text == baseline for text in texts) else
            "a run racing on a shared cache dir diverged",
        ))

    result.elapsed_seconds = time.perf_counter() - started
    return result


def _run_concurrently(target, cache_dir: str) -> List[str]:
    import threading

    texts: List[Optional[str]] = [None, None]
    errors: List[BaseException] = []

    def worker(slot: int) -> None:
        try:
            texts[slot] = target.run(cache_dir)
        except BaseException as exc:  # surfaced as a failed check
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(slot,), daemon=True)
        for slot in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return [text for text in texts if text is not None]


class _ReportTarget:
    """Chaos target: the full report battery over a benchmark subset."""

    name = "report"

    def __init__(self, options: ChaosOptions):
        self._options = options

    def planned_keys(self) -> List[str]:
        from repro.harness.experiments import _suite
        from repro.harness.runall import _plan_cells

        options = self._options
        suite = _suite(list(options.benchmarks) or None)
        period = max(options.functional_window // 25, 1_000)
        cells = _plan_cells(
            suite, options.timing_window, options.functional_window,
            period,
        )
        return [cell_key(cell) for cell in cells]

    def run(self, cache_dir: str, plan: Optional[FaultPlan] = None,
            profiler=None) -> str:
        from repro.harness.runall import generate_report

        options = self._options
        return generate_report(
            timing_window=options.timing_window,
            functional_window=options.functional_window,
            benchmarks=list(options.benchmarks) or None,
            jobs=options.jobs,
            cache_dir=cache_dir,
            task_timeout=options.task_timeout,
            fault_plan=plan,
            profiler=profiler,
        )


class _SweepTarget:
    """Chaos target: a declarative sweep suite's run table + summary."""

    name = "sweep"

    def __init__(self, options: ChaosOptions):
        from repro.sweepspec import load_suite

        self._options = options
        self._spec = load_suite(options.suite)

    def planned_keys(self) -> List[str]:
        from repro.harness.sweep import plan_cells

        _points, cells = plan_cells(self._spec)
        return [cell_key(cell) for cell in cells]

    def run(self, cache_dir: str, plan: Optional[FaultPlan] = None,
            profiler=None) -> str:
        from repro.harness.sweep import SweepOptions, run_sweep

        options = self._options
        result = run_sweep(self._spec, SweepOptions(
            jobs=options.jobs,
            cache_dir=cache_dir,
            task_timeout=options.task_timeout,
            fault_plan=plan,
        ))
        if profiler is not None:
            profiler.count(
                "cache_corrupt_dropped", result.corrupt_dropped
            )
        # The deterministic artifacts are the comparison surface; the
        # summary carries the degradation annotations.
        return result.run_table_json() + "\n" + result.render_summary()


__all__ = [
    "CACHE_SUFFIXES",
    "ChaosCheck",
    "ChaosFault",
    "ChaosKill",
    "ChaosOptions",
    "ChaosResult",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "bitflip_entry",
    "cache_entries",
    "cell_key",
    "check_no_leaked_shm",
    "check_no_orphans",
    "check_output_invariant",
    "inject_cache_faults",
    "install",
    "on_cell_start",
    "run_chaos",
    "truncate_entry",
]
