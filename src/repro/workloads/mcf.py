"""181.mcf — single-depot vehicle scheduling (min-cost network flow).

Models mcf's dominant kernel: Bellman-Ford-style relaxation sweeps over
a heap-allocated arc list.  Pointer-chasing over the heap with tiny,
flat frames — the paper's Table 3 shows mcf with near-zero stack
traffic, reproduced here.
"""

from __future__ import annotations

from repro.workloads.common import rand_source

_TEMPLATE = """
int relaxations = 0;

int build_graph(int *tails, int *heads, int *costs, int arcs) {{
    for (int a = 0; a < arcs; a += 1) {{
        tails[a] = rand31() % {nodes};
        heads[a] = rand31() % {nodes};
        if (heads[a] == tails[a]) {{
            heads[a] = (tails[a] + 1) % {nodes};
        }}
        costs[a] = 1 + (rand31() & 255);
    }}
    return arcs;
}}

int relax_all(int *tails, int *heads, int *costs, int *dist, int arcs) {{
    int improved = 0;
    for (int a = 0; a < arcs; a += 1) {{
        int u = tails[a];
        int v = heads[a];
        int candidate = dist[u] + costs[a];
        if (candidate < dist[v]) {{
            dist[v] = candidate;
            improved += 1;
        }}
    }}
    relaxations += improved;
    return improved;
}}

int total_distance(int *dist, int nodes) {{
    int total = 0;
    for (int n = 0; n < nodes; n += 1) {{
        if (dist[n] < 1000000000) {{
            total += dist[n];
        }}
    }}
    return total;
}}

int main() {{
    int nodes = {nodes};
    int arcs = {arcs};
    int *tails = alloc(arcs);
    int *heads = alloc(arcs);
    int *costs = alloc(arcs);
    int *dist = alloc(nodes);
    build_graph(tails, heads, costs, arcs);
    int checksum = 0;
    for (int source = 0; source < {sources}; source += 1) {{
        for (int n = 0; n < nodes; n += 1) {{
            dist[n] = 1000000000;
        }}
        dist[(source * 7) % nodes] = 0;
        int sweeps = 0;
        while (sweeps < {max_sweeps}) {{
            int improved = relax_all(tails, heads, costs, dist, arcs);
            sweeps += 1;
            if (improved == 0) {{
                break;
            }}
        }}
        checksum += total_distance(dist, nodes);
    }}
    print(checksum);
    print(relaxations);
    return 0;
}}
"""


def make_source(
    nodes: int = 64,
    arcs: int = 256,
    sources: int = 6,
    max_sweeps: int = 12,
    seed: int = 181,
) -> str:
    """Build the mcf workload."""
    return rand_source(seed) + _TEMPLATE.format(
        nodes=nodes, arcs=arcs, sources=sources, max_sweeps=max_sweeps
    )


INPUTS = {"inp": dict(seed=181)}
