"""186.crafty — game-tree search (alpha-beta minimax).

Models the chess engine's search core: deep recursive alpha-beta with a
static evaluation leaf, a small transposition table, and move
generation arithmetic.  Call-depth-driven stack growth makes this the
canonical "active stack region" workload (the paper singles crafty out
in Figure 2: a representative active region of about 400 64-bit units).
"""

from __future__ import annotations

from repro.workloads.common import rand_source

_TEMPLATE = """
int transposition[256];
int nodes_visited = 0;

int evaluate(int state) {{
    int material = (state & 1023) - ((state >> 10) & 1023);
    int mobility = (state >> 3) & 63;
    int king_safety = (state >> 9) & 31;
    return material + mobility * 4 - king_safety * 2;
}}

int next_state(int state, int move) {{
    int mixed = state * 6364136223846793005 + move * 1442695040888963407;
    return (mixed >> 17) & 1048575;
}}

int alphabeta(int state, int depth, int alpha, int beta) {{
    // Per-node move list and history table kept in the frame, like
    // crafty's search state: ~650 B frames times the call depth give
    // the paper's ~400 64-bit-unit active stack region (Figure 2),
    // whose span exceeds 2 KB but fits 4 KB (Table 3).
    int move_list[48];
    nodes_visited += 1;
    if (depth == 0) {{
        return evaluate(state);
    }}
{unrolled_init}
    int slot = state & 255;
    int cached = transposition[slot];
    if (cached != 0 && (cached & 15) == depth) {{
        return cached >> 4;
    }}
    int best = -1000000;
    int moves = {branching};
    for (int move = 0; move < moves; move += 1) {{
        int child = (move_list[move * 5 + 1] >> 7) & 1048575;
        int score = -alphabeta(child, depth - 1, -beta, -alpha);
        if (score > best) {{
            best = score;
        }}
        if (best > alpha) {{
            alpha = best;
        }}
        if (alpha >= beta) {{
            break;
        }}
    }}
    transposition[slot] = (best << 4) | (depth & 15);
    return best;
}}

int main() {{
    int total = 0;
    for (int game = 0; game < {positions}; game += 1) {{
        int root = rand31() & 1048575;
        total += alphabeta(root, {depth}, -1000000, 1000000);
    }}
    print(total);
    print(nodes_visited);
    return 0;
}}
"""


def make_source(
    positions: int = 3,
    depth: int = 9,
    branching: int = 3,
    seed: int = 186,
    unrolled: int = 24,
) -> str:
    """Build the crafty workload (``depth`` drives stack call depth).

    The per-node table init is unrolled with constant indices, so the
    compiler folds it into ``$sp``-relative stores — like the Compaq
    compiler does for crafty's fixed-size search state.
    """
    init_lines = "\n".join(
        f"    move_list[{m}] = state + {m} * 2654435761;"
        for m in range(unrolled)
    )
    return rand_source(seed) + _TEMPLATE.format(
        positions=positions,
        depth=depth,
        branching=branching,
        unrolled_init=init_lines,
    )


INPUTS = {"ref": dict(seed=186)}
