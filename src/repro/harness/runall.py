"""Run the full experiment battery and render one report.

``generate_report`` regenerates every table and figure of the paper
(plus the characterization extensions) at the requested windows and
returns a single markdown document — the programmatic equivalent of
``pytest benchmarks/ --benchmark-only``, usable from the CLI
(``python -m repro report``) or a notebook.

The sweep is decomposed into (benchmark × experiment × window) cells
and executed by :mod:`repro.harness.parallel` — ``jobs`` workers over
a process pool, backed by the shared on-disk trace cache when
``cache_dir`` is set.  Results merge in suite order, so the document
is byte-identical for any ``jobs`` value; a cell that fails after its
retry renders as an annotated gap inside its section instead of
crashing the report.
"""

from __future__ import annotations

import hashlib
import io
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness.experiments import (
    CharacterizationResult,
    FIG5_CONFIGS,
    FIG6_STEPS,
    FIG7_CONFIGS,
    FIG9_CONFIGS,
    Fig5Result,
    Fig6Result,
    Fig7Result,
    Fig9Result,
    Table3Result,
    Table4Result,
    _suite,
    fig5_machine_pair,
    fig6_machine_pair,
    fig7_machine_pair,
    fig9_machine_pair,
    table1_workloads,
    table2_models,
)
from repro.harness.parallel import (
    CellOutcome,
    EngineOptions,
    TaskCell,
    TraceCache,
    run_cells,
)
from repro.profiling import PhaseProfiler
from repro.workloads import input_names, workload

#: (section, which window it uses, extra params) in report order.
_SECTION_PLAN: Tuple[Tuple[str, str], ...] = (
    ("characterize", "functional"),
    ("fig5", "timing"),
    ("fig6", "timing"),
    ("fig7", "timing"),
    ("table3", "functional"),
    ("table4", "functional"),
    ("fig9", "timing"),
)

#: Timing figures split one cell per machine configuration, so a slow
#: column (e.g. the gshare run) never serializes behind the rest of
#: its benchmark's figure.  Tuples give the column order of each
#: figure's table, which the merge preserves.
_SECTION_CONFIGS: Dict[str, Tuple[str, ...]] = {
    "fig5": FIG5_CONFIGS,
    "fig6": FIG6_STEPS,
    "fig7": FIG7_CONFIGS,
    "fig9": FIG9_CONFIGS,
}

#: (document title, compute section, payload part) in document order.
#: One compute section can feed several document sections (Fig 1-3 and
#: first-touch all come from "characterize"; Fig 7 and Fig 8 both come
#: from "fig7"), so incremental reuse is per compute section.
_RENDER_PLAN: Tuple[Tuple[str, str, str], ...] = (
    ("Figure 1 — access distribution", "characterize", "fig1"),
    ("Figure 2 — stack depth", "characterize", "fig2"),
    ("Figure 3 — offset locality", "characterize", "fig3"),
    (
        "First-touch analysis (valid-bit rationale)",
        "characterize",
        "first_touch",
    ),
    ("Figure 5 — ideal morphing", "fig5", "fig5"),
    ("Figure 6 — progressive analysis", "fig6", "fig6"),
    ("Figure 7 — SVF vs stack cache", "fig7", "fig7"),
    ("Figure 8 — reference breakdown", "fig7", "fig8"),
    ("Table 3 — memory traffic", "table3", "table3"),
    ("Table 4 — context-switch writeback", "table4", "table4"),
    ("Figure 9 — SVF speedups by ports", "fig9", "fig9"),
)

#: expected payload parts per compute section (derived, kept explicit
#: for cached-payload validation).
_SECTION_PARTS: Dict[str, Tuple[str, ...]] = {}
for _title, _section, _part in _RENDER_PLAN:
    _SECTION_PARTS.setdefault(_section, ())
    _SECTION_PARTS[_section] += (_part,)

#: Analysis version per compute section — bump when the section's
#: analysis or rendering changes meaning, so incremental runs stop
#: addressing stale cached payloads.
_SECTION_VERSIONS: Dict[str, int] = {
    "characterize": 1,
    "fig5": 1,
    "fig6": 1,
    "fig7": 1,
    "table3": 1,
    "table4": 1,
    "fig9": 1,
}

_MACHINE_PAIRS: Dict[str, Callable[[str], Tuple]] = {
    "fig5": fig5_machine_pair,
    "fig6": fig6_machine_pair,
    "fig7": fig7_machine_pair,
    "fig9": fig9_machine_pair,
}


def section_content_key(
    section: str,
    suite: Sequence[str],
    window: int,
    period: int,
) -> str:
    """Content digest of everything that feeds one compute section.

    Covers the schema version, the section's analysis version, the
    instruction window, the compile options, every workload source the
    section consumes (all inputs for Table 3, the default input
    elsewhere), the machine-config pairs of per-config sections, and
    the functional knobs (Table 3 sizes, Table 4 period/capacity).
    Any change to any input changes the key, so cached section
    payloads never need in-place invalidation.
    """
    # Imported lazily: repro.api imports the harness package, so a
    # module-level import here would be circular.
    from repro.api import SCHEMA_VERSION, CompileOptions

    hasher = hashlib.sha256()

    def feed(text: str) -> None:
        hasher.update(text.encode("utf-8"))
        hasher.update(b"\x00")

    feed(f"schema={SCHEMA_VERSION}")
    feed(f"section={section}")
    feed(f"analysis-version={_SECTION_VERSIONS.get(section, 0)}")
    feed(f"window={window}")
    feed(f"compile={CompileOptions()!r}")
    if section == "table3":
        feed("sizes=(2048, 4096, 8192)")
    if section == "table4":
        feed(f"period={period}")
        feed("capacity=8192")
    for benchmark in suite:
        inputs = (
            input_names(benchmark) if section == "table3" else (None,)
        )
        for input_name in inputs:
            work = workload(benchmark, input_name)
            feed(f"workload={work.full_name}")
            feed(work.source())
    pair_fn = _MACHINE_PAIRS.get(section)
    if pair_fn is not None:
        for config in _SECTION_CONFIGS[section]:
            base, variant = pair_fn(config)
            feed(f"config={config}")
            feed(repr(base))
            feed(repr(variant))
    return hasher.hexdigest()[:24]


def _plan_cells(
    suite: Sequence[str],
    timing_window: int,
    functional_window: int,
    period: int,
    sections: Optional[Sequence[str]] = None,
) -> List[TaskCell]:
    """Section-major cell order: workers hit distinct benchmarks first,
    so cold-cache runs compute each trace once instead of racing on it.
    Timing figures plan one whole-row cell per benchmark — the drivers
    push every column of the row through a single batched trace pass
    (:func:`repro.uarch.pipeline.simulate_batch`), so splitting per
    config would multiply walks, not parallelism.  ``sections``
    restricts planning to a subset (the incremental mode plans only
    sections whose content keys changed)."""
    windows = {"timing": timing_window, "functional": functional_window}
    cells = []
    for section, window_kind in _SECTION_PLAN:
        if sections is not None and section not in sections:
            continue
        window = windows[window_kind]
        params: Tuple = ()
        if section == "table4":
            params = (("period", period),)
        for benchmark in suite:
            cells.append(TaskCell(section, benchmark, window, params))
    return cells


def _merge(
    suite: Sequence[str],
    outcomes: Sequence[CellOutcome],
    period: int,
) -> Dict[str, object]:
    """Fold per-cell payloads into result objects, in suite order.

    Timing figures arrive as whole-row payloads (one batched cell per
    benchmark); legacy per-config cells — e.g. warm outcomes replayed
    by older tooling — still merge column by column in the figure's
    canonical config order.  A benchmark with a missing/failed cell
    drops out of that figure entirely, with the specific cell named in
    the degraded annotation.
    """
    by_cell = {
        (
            outcome.cell.section,
            outcome.cell.benchmark,
            outcome.cell.param("config"),
        ): outcome
        for outcome in outcomes
    }

    def payload(section: str, benchmark: str, config: str = None):
        outcome = by_cell.get((section, benchmark, config))
        return outcome.payload if outcome is not None and outcome.ok else None

    def config_row(section: str, benchmark: str):
        row = {}
        for config in _SECTION_CONFIGS[section]:
            value = payload(section, benchmark, config)
            if value is None:
                return None
            row[config] = value
        return row

    characterization = CharacterizationResult()
    fig5 = Fig5Result()
    fig6 = Fig6Result()
    fig7 = Fig7Result()
    fig9 = Fig9Result()
    table3 = Table3Result()
    table4 = Table4Result(period=period)
    for benchmark in suite:
        char = payload("characterize", benchmark)
        if char is not None:
            characterization.distributions[benchmark] = char["distribution"]
            characterization.depth_profiles[benchmark] = char["depth"]
            characterization.localities[benchmark] = char["locality"]
            characterization.first_touch[benchmark] = char["first_touch"]
        for result, section in ((fig5, "fig5"), (fig6, "fig6"),
                                (fig9, "fig9")):
            row = payload(section, benchmark)
            if row is None:
                row = config_row(section, benchmark)
            if row is not None:
                result.speedups[benchmark] = row
        seven = payload("fig7", benchmark)
        if seven is not None:
            fig7.speedups[benchmark] = seven["speedups"]
            fig7.svf_stats[benchmark] = seven["svf_stats"]
        else:
            seven = config_row("fig7", benchmark)
            if seven is not None and "svf_stats" in seven["(2+2)svf"]:
                fig7.speedups[benchmark] = {
                    config: cell["speedup"]
                    for config, cell in seven.items()
                }
                fig7.svf_stats[benchmark] = seven["(2+2)svf"]["svf_stats"]
        traffic = payload("table3", benchmark)
        if traffic is not None:
            table3.traffic.update(traffic)
        switch = payload("table4", benchmark)
        if switch is not None:
            table4.rows[benchmark] = switch
    return {
        "characterize": characterization,
        "fig5": fig5,
        "fig6": fig6,
        "fig7": fig7,
        "fig9": fig9,
        "table3": table3,
        "table4": table4,
    }


def _render_section_parts(
    section: str, merged: Dict[str, object]
) -> Dict[str, str]:
    """Render one compute section's document part(s) from merged results."""
    if section == "characterize":
        characterization = merged["characterize"]
        return {
            "fig1": characterization.render_fig1(),
            "fig2": characterization.render_fig2(),
            "fig3": characterization.render_fig3(),
            "first_touch": characterization.render_first_touch(),
        }
    if section == "fig7":
        return {
            "fig7": merged["fig7"].render(),
            "fig8": merged["fig7"].render_fig8(),
        }
    return {section: merged[section].render()}


def _valid_section_payload(section: str, payload) -> bool:
    """A cached section payload must carry exactly the expected parts."""
    return (
        isinstance(payload, dict)
        and set(payload) == set(_SECTION_PARTS[section])
        and all(isinstance(value, str) for value in payload.values())
    )


def generate_report(
    timing_window: int = 40_000,
    functional_window: int = 80_000,
    benchmarks: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    task_timeout: float = 600.0,
    profiler: Optional[PhaseProfiler] = None,
    incremental: bool = False,
    fault_plan=None,
) -> str:
    """Run everything; returns the report as markdown text.

    ``progress``, if given, is called with a status string before each
    stage and after each finished cell (e.g. ``print``).  ``jobs``
    picks the worker count (None → ``os.cpu_count()``, 1 → inline);
    ``cache_dir`` enables the shared on-disk trace cache.  The output
    is byte-identical across ``jobs`` values.

    ``profiler``, if given, accumulates the per-phase breakdown of the
    whole sweep: every cell's worker-side phase snapshot is merged in,
    plus the report's own ``render`` phase, and the cache counters
    (cell/trace hits and misses, sections reused).  The breakdown
    never enters the document, so profiled and unprofiled reports stay
    byte-identical.

    ``incremental`` (requires ``cache_dir``) keys every compute
    section by :func:`section_content_key` and reuses the cached
    rendered payload of any section whose key is unchanged — only
    changed sections plan cells at all.  Reused and re-rendered text
    concatenate to the same document, so incremental output stays
    byte-identical to a full run at every job count, warm and cold.
    Sections that degrade (failed cells) are never stored, so they
    re-run on the next invocation.

    ``fault_plan`` (a :class:`repro.harness.chaos.FaultPlan`) is
    forwarded to the engine — the chaos harness uses it to prove the
    degradation contract above under injected worker faults.
    """

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    suite = _suite(benchmarks)
    period = max(functional_window // 25, 1_000)
    started = time.time()
    render_seconds = 0.0
    render_started = time.perf_counter()

    windows = {"timing": timing_window, "functional": functional_window}
    section_cache: Optional[TraceCache] = None
    section_keys: Dict[str, str] = {}
    reused_parts: Dict[str, Dict[str, str]] = {}
    if incremental and cache_dir:
        section_cache = TraceCache(cache_dir)
        for section_name, window_kind in _SECTION_PLAN:
            key = section_content_key(
                section_name, suite, windows[window_kind], period
            )
            section_keys[section_name] = key
            payload = section_cache.load_section(section_name, key)
            if _valid_section_payload(section_name, payload):
                reused_parts[section_name] = payload
        if reused_parts:
            note(
                f"incremental: reusing {len(reused_parts)}/"
                f"{len(_SECTION_PLAN)} cached sections"
            )
    pending = [
        section_name
        for section_name, _ in _SECTION_PLAN
        if section_name not in reused_parts
    ]

    out = io.StringIO()
    out.write("# SVF reproduction — full experiment report\n\n")
    out.write(
        f"Windows: {timing_window:,} instructions (timing), "
        f"{functional_window:,} (functional).\n\n"
    )

    failures_by_section: Dict[str, List[CellOutcome]] = {}

    def section(title: str, body: str, section_key: str = "") -> None:
        annotations = ""
        for outcome in failures_by_section.get(section_key, ()):
            annotations += (
                f"\n(degraded: cell {outcome.cell.label} failed after "
                f"{outcome.attempts} attempt"
                f"{'s' if outcome.attempts != 1 else ''} — {outcome.error})"
            )
        out.write(f"## {title}\n\n```\n{body}{annotations}\n```\n\n")

    note("Tables 1-2 (inventories)")
    section("Table 1 — benchmarks", table1_workloads())
    section("Table 2 — machine models", table2_models())
    render_seconds += time.perf_counter() - render_started

    cells = _plan_cells(
        suite, timing_window, functional_window, period, sections=pending
    )
    options = EngineOptions(
        jobs=jobs, cache_dir=cache_dir, task_timeout=task_timeout,
        fault_plan=fault_plan,
    )
    note(
        f"running {len(cells)} cells over {len(suite)} benchmarks "
        f"({options.effective_jobs()} jobs, cache "
        f"{cache_dir if cache_dir else 'off'})"
    )
    outcomes = run_cells(cells, options, progress=progress)
    for outcome in outcomes:
        if not outcome.ok:
            failures_by_section.setdefault(
                outcome.cell.section, []
            ).append(outcome)
        if profiler is not None:
            profiler.merge(outcome.phases)
    render_started = time.perf_counter()
    merged = _merge(suite, outcomes, period)

    parts: Dict[str, Dict[str, str]] = dict(reused_parts)
    for section_name in pending:
        parts[section_name] = _render_section_parts(section_name, merged)
        if (
            section_cache is not None
            and section_name not in failures_by_section
        ):
            # Degraded sections are never stored: their gaps must not
            # masquerade as valid content on the next warm run.
            section_cache.store_section(
                section_name, section_keys[section_name], parts[section_name]
            )

    for title, section_name, part in _RENDER_PLAN:
        section(title, parts[section_name][part], section_name)

    if profiler is not None:
        profiler.count("sections_reused", len(reused_parts))
        profiler.count("sections_rendered", len(pending))
        if section_cache is not None:
            stats = section_cache.stats
            profiler.count("section_cache_hits", stats.section_hits)
            profiler.count("section_cache_misses", stats.section_misses)
            profiler.count("section_cache_stores", stats.section_stores)
            profiler.count("cache_corrupt_dropped", stats.corrupt_dropped)
            profiler.count(
                "cache_transient_errors", stats.transient_errors
            )

    # The elapsed time goes to the progress channel, not the document,
    # so reports stay byte-comparable across runs and job counts.
    note(f"report complete in {time.time() - started:.1f}s")
    out.write("_Generated by repro.harness.runall._\n")
    render_seconds += time.perf_counter() - render_started
    if profiler is not None:
        profiler.note("render", render_seconds)
    text = out.getvalue()
    # Gap-row invariant: every failed cell must surface as an explicit
    # degradation annotation — a silently missing number is the one
    # outcome the failure contract forbids.
    for section_failures in failures_by_section.values():
        for outcome in section_failures:
            if f"(degraded: cell {outcome.cell.label} failed" not in text:
                raise RuntimeError(
                    f"report invariant violated: failed cell "
                    f"{outcome.cell.label} ({outcome.error}) left no "
                    f"degradation annotation in the document"
                )
    return text
