"""Measure the parallel report engine: wall-clock by job count.

Regenerates ``benchmarks/results/parallel_report_timing.txt``::

    PYTHONPATH=src python benchmarks/measure_parallel.py \
        [--jobs 4] [--timing-window 40000] [--functional-window 80000] \
        [--seed-seconds 71.6]

Three full-suite runs are timed: serial (``jobs=1``) on a cold cache,
parallel (``--jobs``) on a cold cache, and parallel again on the warm
cache the second run left behind.  Every run's markdown is compared
byte-for-byte, so the artifact doubles as a determinism check.
``--seed-seconds`` records an externally measured wall clock of the
pre-engine serial harness for the before/after row.
"""

from __future__ import annotations

import argparse
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.harness.runall import generate_report

RESULTS = Path(__file__).parent / "results" / "parallel_report_timing.txt"


def timed_run(jobs: int, cache_dir: str, windows) -> tuple:
    started = time.perf_counter()
    text = generate_report(
        timing_window=windows[0],
        functional_window=windows[1],
        jobs=jobs,
        cache_dir=cache_dir,
    )
    return time.perf_counter() - started, text


def main() -> int:
    cli = argparse.ArgumentParser(description=__doc__)
    cli.add_argument("--jobs", type=int, default=4)
    cli.add_argument("--timing-window", type=int, default=40_000)
    cli.add_argument("--functional-window", type=int, default=80_000)
    cli.add_argument("--seed-seconds", type=float, default=None)
    args = cli.parse_args()
    windows = (args.timing_window, args.functional_window)

    cold_serial_dir = tempfile.mkdtemp(prefix="repro-measure-")
    cold_parallel_dir = tempfile.mkdtemp(prefix="repro-measure-")
    try:
        serial_s, serial_text = timed_run(1, cold_serial_dir, windows)
        parallel_s, parallel_text = timed_run(
            args.jobs, cold_parallel_dir, windows
        )
        warm_s, warm_text = timed_run(args.jobs, cold_parallel_dir, windows)
    finally:
        shutil.rmtree(cold_serial_dir, ignore_errors=True)
        shutil.rmtree(cold_parallel_dir, ignore_errors=True)

    identical = serial_text == parallel_text == warm_text
    lines = [
        "Parallel report engine: full-suite wall clock",
        f"(windows: {windows[0]:,} timing / {windows[1]:,} functional; "
        f"host: {os.cpu_count()} CPU(s))",
        "",
        f"{'configuration':42s} {'seconds':>8s}",
    ]
    if args.seed_seconds is not None:
        lines.append(
            f"{'seed serial harness (pre-engine), no cache':42s} "
            f"{args.seed_seconds:8.1f}"
        )
    lines += [
        f"{'engine --jobs 1, cold cache':42s} {serial_s:8.1f}",
        f"{f'engine --jobs {args.jobs}, cold cache':42s} {parallel_s:8.1f}",
        f"{f'engine --jobs {args.jobs}, warm cache':42s} {warm_s:8.1f}",
        "",
        f"reports byte-identical across runs: {'yes' if identical else 'NO'}",
    ]
    if args.seed_seconds is not None:
        lines.append(
            f"speedup vs seed harness: cold "
            f"{args.seed_seconds / parallel_s:.1f}x, warm "
            f"{args.seed_seconds / warm_s:.1f}x"
        )
    lines.append(
        f"speedup --jobs {args.jobs} vs --jobs 1 (cold): "
        f"{serial_s / parallel_s:.2f}x"
    )
    if (os.cpu_count() or 1) == 1:
        lines.append(
            "caveat: single-CPU host — the worker pool timeshares one "
            "core, so the --jobs axis cannot show parallel speedup here; "
            "the cross-run win comes from the trace/cell cache."
        )
    text = "\n".join(lines)
    print(text)
    RESULTS.write_text(text + "\n")
    print(f"\nwrote {RESULTS}")
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
