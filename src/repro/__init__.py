"""repro — reproduction of "Stack Value File: Custom Microarchitecture
for the Stack" (Lee, Smelyanskiy, Newburn, Tyson — HPCA 2001).

Layers, bottom-up:

* :mod:`repro.isa` — Alpha-like 64-bit RISC ISA and assembler;
* :mod:`repro.lang` — MiniC compiler (the workload substrate);
* :mod:`repro.analysis` — static CFG/dataflow analysis and the
  stack-discipline linter guarding the toolchain's output;
* :mod:`repro.emulator` — functional emulator producing dynamic traces;
* :mod:`repro.trace` — trace records, region classification, analyses;
* :mod:`repro.uarch` — out-of-order timing model (Table 2 machines);
* :mod:`repro.core` — the Stack Value File, the decoupled stack-cache
  baseline, and the traffic/context-switch models;
* :mod:`repro.workloads` — the SPECint2000-inspired suite (Table 1);
* :mod:`repro.harness` — one experiment driver per table/figure.

The stable entry points live in :mod:`repro.api` (re-exported here):
frozen option objects plus the verbs ``compile_source``,
``run_workload``, ``characterize``, ``simulate``, ``lint`` and
``experiment``.  Quick start::

    from repro import MachineSpec, simulate, workload

    trace = workload("crafty").trace(max_instructions=50_000)
    base = simulate(trace, MachineSpec())
    svf = simulate(trace, MachineSpec(svf_mode="svf"))
    print(svf.speedup_over(base))

The older explicit form (``table2_config(16)`` /
``config.with_svf(...)`` / ``uarch.simulate``) keeps working —
:func:`repro.api.simulate` accepts a raw :class:`MachineConfig` too.
"""

__version__ = "1.1.0"

from repro.analysis import LintReport, Severity, lint_all, lint_program
from repro.api import (
    SCHEMA_VERSION,
    CertifyResult,
    CompileOptions,
    ExperimentResult,
    MachineSpec,
    RunResult,
    certify,
    characterize,
    compile_source,
    experiment,
    lint,
    run_workload,
    simulate,
)
from repro.core import StackCache, StackValueFile
from repro.uarch import MachineConfig, SimStats, table2_config
from repro.workloads import all_workloads, workload

__all__ = [
    "CertifyResult",
    "CompileOptions",
    "ExperimentResult",
    "LintReport",
    "MachineConfig",
    "MachineSpec",
    "RunResult",
    "SCHEMA_VERSION",
    "Severity",
    "SimStats",
    "StackCache",
    "StackValueFile",
    "__version__",
    "all_workloads",
    "certify",
    "characterize",
    "compile_source",
    "experiment",
    "lint",
    "lint_all",
    "lint_program",
    "run_workload",
    "simulate",
    "table2_config",
    "workload",
]
