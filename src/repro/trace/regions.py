"""Memory-region classification (paper Section 2, Figure 1).

The paper partitions data references by the region of memory they
access — stack, global (static) data, heap — and partitions *stack*
references further by access method: through ``$sp``, through ``$fp``,
or through a general-purpose register (``$gpr``).  ``$sp``-relative
accesses are the ones the SVF can morph in the front-end; the others
must be bounds-checked and re-routed.
"""

from __future__ import annotations

from enum import Enum

from repro.emulator.memory import DATA_BASE, HEAP_BASE, TEXT_BASE
from repro.isa.registers import FP, SP

#: Addresses at or above this are considered part of the stack region.
#: The stack grows down from STACK_BASE; nothing else is mapped in the
#: upper half of the address space.
STACK_REGION_FLOOR = 0x4000_0000


class Region(Enum):
    """Coarse memory regions of the Alpha-style address space."""

    TEXT = "text"
    GLOBAL = "global"
    HEAP = "heap"
    STACK = "stack"
    OTHER = "other"


class AccessMethod(Enum):
    """How a stack reference addressed the stack (Figure 1)."""

    STACK_SP = "stack_sp"
    STACK_FP = "stack_fp"
    STACK_GPR = "stack_gpr"
    GLOBAL = "global"
    HEAP = "heap"
    OTHER = "other"


def classify_address(addr: int) -> Region:
    """Map an address to its memory region."""
    if addr >= STACK_REGION_FLOOR:
        return Region.STACK
    if addr >= HEAP_BASE:
        return Region.HEAP
    if addr >= DATA_BASE:
        return Region.GLOBAL
    if addr >= TEXT_BASE:
        return Region.TEXT
    return Region.OTHER


def classify_access(addr: int, base_reg) -> AccessMethod:
    """Classify one data reference by region and access method."""
    region = classify_address(addr)
    if region is Region.STACK:
        if base_reg == SP:
            return AccessMethod.STACK_SP
        if base_reg == FP:
            return AccessMethod.STACK_FP
        return AccessMethod.STACK_GPR
    if region is Region.HEAP:
        return AccessMethod.HEAP
    if region is Region.GLOBAL:
        return AccessMethod.GLOBAL
    return AccessMethod.OTHER


def is_stack_address(addr: int) -> bool:
    """True if ``addr`` lies in the stack region."""
    return addr >= STACK_REGION_FLOOR
