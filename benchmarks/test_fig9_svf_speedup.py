"""Figure 9 — SVF speedups over same-ported baselines.

Paper shape: adding an SVF to a *single-ported* data cache yields the
largest improvement (50% for one SVF port, 65% for two); dual-ported
baselines still gain (24% average for (2+2)); most benchmarks saturate
at two SVF ports.
"""

from repro.harness import fig9_svf_speedup


def test_fig9(benchmark, emit, timing_window):
    result = benchmark.pedantic(
        lambda: fig9_svf_speedup(max_instructions=timing_window),
        rounds=1,
        iterations=1,
    )
    emit("fig9_svf_speedup", result.render())

    averages = result.averages()
    # Single-ported designs gain the most.
    assert averages["(1+1)"] > 1.1
    assert averages["(1+2)"] >= averages["(1+1)"]
    assert averages["(1+2)"] > averages["(2+2)"], (
        "port-starved baselines benefit more from the SVF"
    )
    # Dual-ported baselines still benefit on average.
    assert averages["(2+2)"] > 1.0
    assert averages["(2+2)"] >= averages["(2+1)"]
