"""Register file conventions for the Alpha-like ISA.

The paper targets the Compaq Alpha, a 64-bit RISC architecture with 32
integer registers.  The conventions that matter for the Stack Value File
are reproduced here:

* ``$sp`` (r30) — stack pointer; the stack grows *down* from a
  system-defined base address towards 0.  ``$sp``-relative addressing is
  the access method the SVF morphs into register moves.
* ``$fp`` (r15) — frame pointer; an alternative way to address the stack
  that must be *re-routed* into the SVF after address calculation.
* ``$ra`` (r26) — return address register, written by ``bsr``/``jsr``.
* ``$zero`` (r31) — hardwired zero.

Any other register used as a base for a stack access is a ``$gpr``
access in the paper's taxonomy (Figure 1).
"""

from __future__ import annotations

NUM_REGISTERS = 32

# Alpha software conventions (OSF/1 calling standard).
ZERO = 31
SP = 30
GP = 29
RA = 26
FP = 15

#: Return-value register.
V0 = 0
#: Argument registers a0..a5 (r16..r21).
ARG_REGISTERS = (16, 17, 18, 19, 20, 21)
#: Caller-saved temporaries usable by expression evaluation.
TEMP_REGISTERS = (1, 2, 3, 4, 5, 6, 7, 8, 22, 23, 24, 25, 27, 28)
#: Callee-saved registers (s0..s5 = r9..r14).
SAVED_REGISTERS = (9, 10, 11, 12, 13, 14)

_ALIASES = {
    "zero": ZERO,
    "sp": SP,
    "gp": GP,
    "ra": RA,
    "fp": FP,
    "v0": V0,
}
_ALIASES.update({f"a{i}": reg for i, reg in enumerate(ARG_REGISTERS)})
_ALIASES.update({f"s{i}": reg for i, reg in enumerate(SAVED_REGISTERS)})

# Canonical display names: specials plus a/s conventions.  Temporaries
# render as plain architectural names (r1, r2, ...) but still parse
# via their t-aliases below.
_CANONICAL = {reg: name for name, reg in _ALIASES.items()}

_ALIASES.update({f"t{i}": reg for i, reg in enumerate(TEMP_REGISTERS)})


class RegisterError(ValueError):
    """Raised when a register name or number is invalid."""


def parse_register(text: str) -> int:
    """Parse a register operand such as ``r12``, ``$sp`` or ``fp``.

    Returns the register number (0..31).  Raises :class:`RegisterError`
    for anything else.
    """
    name = text.strip().lower()
    if name.startswith("$"):
        name = name[1:]
    if name in _ALIASES:
        return _ALIASES[name]
    if name.startswith("r"):
        try:
            number = int(name[1:])
        except ValueError as exc:
            raise RegisterError(f"bad register {text!r}") from exc
        if 0 <= number < NUM_REGISTERS:
            return number
    raise RegisterError(f"bad register {text!r}")


def register_name(number: int) -> str:
    """Return the canonical display name for a register number."""
    if not 0 <= number < NUM_REGISTERS:
        raise RegisterError(f"bad register number {number}")
    return _CANONICAL.get(number, f"r{number}")
