"""Edit-set IR over an assembled :class:`Program`.

The optimizer passes never mutate the program they analyze.  Each pass
records its decisions in an :class:`EditSet` — instruction indices to
delete, indices to replace with a new :class:`Instruction` — and the
round applies them all at once with :func:`rebuild_program`, which
produces a fresh program with labels and branch targets remapped.

Deleting instruction *i* remaps every label or branch target that
pointed at *i* to the next surviving instruction.  That is exactly
"execute the deleted instruction as a no-op", which is the soundness
condition every deleting pass establishes (the instruction's effect is
unobservable on every path reaching it, including the branch edge).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Set

from repro.isa.instructions import Instruction, Program


@dataclass
class EditSet:
    """Pending edits against one program, keyed by instruction index."""

    deletions: Set[int] = field(default_factory=set)
    replacements: Dict[int, Instruction] = field(default_factory=dict)

    def delete(self, index: int) -> None:
        self.deletions.add(index)
        self.replacements.pop(index, None)

    def replace(self, index: int, instruction: Instruction) -> None:
        if index not in self.deletions:
            self.replacements[index] = instruction

    def merge(self, other: "EditSet") -> None:
        self.deletions |= other.deletions
        for index, instruction in other.replacements.items():
            self.replace(index, instruction)
        for index in self.deletions:
            self.replacements.pop(index, None)

    def __bool__(self) -> bool:
        return bool(self.deletions or self.replacements)

    def __len__(self) -> int:
        return len(self.deletions) + len(self.replacements)


def rebuild_program(program: Program, edits: EditSet) -> Program:
    """Apply ``edits`` and return a new, fully remapped program."""
    count = len(program.instructions)
    # kept_before[i] = number of surviving instructions strictly before
    # i; it is both the new index of a kept instruction and the remap of
    # a deleted branch target onto the next survivor.
    kept_before = [0] * (count + 1)
    survivors = 0
    for index in range(count):
        kept_before[index] = survivors
        if index not in edits.deletions:
            survivors += 1
    kept_before[count] = survivors

    instructions = []
    for index in range(count):
        if index in edits.deletions:
            continue
        instruction = edits.replacements.get(
            index, program.instructions[index]
        )
        target_index = instruction.target_index
        if target_index is not None:
            target_index = kept_before[target_index]
        instructions.append(
            dataclasses.replace(instruction, target_index=target_index)
        )

    labels = {
        label: kept_before[index]
        for label, index in program.labels.items()
    }
    return Program(
        instructions=instructions,
        labels=labels,
        data=bytearray(program.data),
        symbols=dict(program.symbols),
        entry=program.entry,
    )
