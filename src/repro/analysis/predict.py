"""Static SVF-traffic predictor (per-function fill/writeback bounds).

The SVF's two valid/dirty-bit wins are bounded statically by the same
CFG facts the lint passes compute:

* **fill-reads avoided** — a full-granule store validating a freshly
  allocated (invalid) granule needs no fill from the L1.  Per
  activation, each frame granule can be validated this way at most
  once, and only granules some store can fully cover qualify: those
  written by an aligned constant ``stq``, plus — when the frame has
  taken addresses and either a computed store or a call can write
  through them — every granule of the aliased region.

* **writebacks killed** — a dirty granule dropped at frame death costs
  no writeback.  Per activation, only granules the activation can
  dirty qualify: those touched by any constant store, plus the same
  aliased term.

Both are *upper bounds per activation*: multiplied by the dynamic
activation count of each function they must dominate the simulator's
measured ``fills_avoided`` / ``killed_dirty_words`` counters (the
harness cross-check in :mod:`repro.harness.prediction` asserts
exactly that).  The bounds are sound under the stack discipline the
lint passes verify; a program with structural anomalies, ``$sp``
tracking failures, frame errors, or a stack address escaping to
non-stack memory (a potential dangling alias) is reported as
unanalyzable instead of being given bounds that could be violated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.analysis.cfg import ProgramCFG, build_cfg
from repro.analysis.report import Severity
from repro.analysis.stackcheck import (
    analyze_frames,
    dead_store_pass,
    escape_pass,
    first_read_pass,
)
from repro.isa.instructions import Program

#: CFG anomalies that leave the graph (and so the facts) incomplete.
_FATAL_ANOMALIES = frozenset({
    "escaping-branch", "indirect-jump", "fallthrough-exit",
})

_GRANULE = 8


@dataclass(frozen=True)
class FunctionPrediction:
    """Per-activation SVF bounds for one function."""

    name: str
    #: frame allocation in bytes (0 for frameless functions)
    frame_bytes: int
    #: distinct granules touched by constant frame stores (any size)
    store_granules: int
    #: distinct granules fully covered by one aligned constant ``stq``
    full_store_granules: int
    #: granules of the aliased region chargeable to computed writers
    aliased_granules: int
    #: static dead-store sites (lint ``dead-store`` diagnostics)
    dead_store_sites: int
    #: first-read sites (each may force a demand fill)
    first_read_sites: int
    #: per-activation upper bound on fill-reads avoided
    fill_avoid_bound: int
    #: per-activation upper bound on dirty granules killed at death
    writeback_kill_bound: int


@dataclass
class TrafficPrediction:
    """Static bounds for every function of one program."""

    functions: Dict[str, FunctionPrediction] = field(default_factory=dict)
    #: True when every function's facts are trustworthy
    analyzable: bool = True
    #: why analyzability was lost (empty when analyzable)
    reasons: list = field(default_factory=list)

    def function(self, name: str) -> Optional[FunctionPrediction]:
        return self.functions.get(name)

    @property
    def total_fill_avoid_bound(self) -> int:
        return sum(
            p.fill_avoid_bound for p in self.functions.values()
        )

    @property
    def total_writeback_kill_bound(self) -> int:
        return sum(
            p.writeback_kill_bound for p in self.functions.values()
        )


def _granules(offset: int, size: int) -> Set[int]:
    return set(range(offset // _GRANULE, (offset + size - 1) // _GRANULE + 1))


def predict_program(
    program: Program, pcfg: Optional[ProgramCFG] = None
) -> TrafficPrediction:
    """Compute per-function SVF-traffic bounds for ``program``."""
    if pcfg is None:
        pcfg = build_cfg(program)
    prediction = TrafficPrediction()
    for anomaly in pcfg.anomalies:
        if anomaly.kind in _FATAL_ANOMALIES:
            prediction.analyzable = False
            prediction.reasons.append(
                f"{anomaly.function}: {anomaly.message}"
            )
    for function in pcfg.functions.values():
        context, diagnostics = analyze_frames(function)
        if not context.sp_tracked or any(
            d.severity is Severity.ERROR for d in diagnostics
        ):
            prediction.analyzable = False
            prediction.reasons.append(
                f"{function.name}: $sp untracked or frame errors"
            )
            continue

        if any(
            function.instruction(index).is_sp_adjust
            and function.instruction(index).imm % _GRANULE != 0
            for block in function.blocks
            for index in block.indices()
        ):
            # A misaligned frame shifts granule boundaries relative to
            # the entry $sp; entry-relative granule ids stop matching
            # the SVF's absolute ones.
            prediction.analyzable = False
            prediction.reasons.append(
                f"{function.name}: frame size not granule-aligned"
            )

        first_reads = first_read_pass(context)
        dead_stores = dead_store_pass(context)
        escapes = escape_pass(context)
        if any(d.severity is Severity.WARNING for d in escapes):
            # A stack address stored outside the stack can outlive its
            # frame; a dangling alias breaks per-activation attribution.
            prediction.analyzable = False
            prediction.reasons.append(
                f"{function.name}: stack address escapes to non-stack "
                f"memory"
            )

        store_granules: Set[int] = set()
        full_store_granules: Set[int] = set()
        has_computed_store = False
        for block in function.blocks:
            if block.id not in context.reachable:
                continue
            for index in block.indices():
                instruction = function.instruction(index)
                if not instruction.is_store:
                    continue
                slot = context.slot(index)
                if slot is None:
                    has_computed_store = True
                    continue
                offset, size = slot
                store_granules |= _granules(offset, size)
                if size == _GRANULE and offset % _GRANULE == 0:
                    full_store_granules.add(offset // _GRANULE)

        aliased: Set[int] = set()
        floor = context.aliased_floor
        if floor < 0 and (has_computed_store or function.call_sites):
            aliased = set(range(floor // _GRANULE, 0))

        prediction.functions[function.name] = FunctionPrediction(
            name=function.name,
            frame_bytes=-context.deepest_sp,
            store_granules=len(store_granules),
            full_store_granules=len(full_store_granules),
            aliased_granules=len(aliased),
            dead_store_sites=len(dead_stores),
            first_read_sites=len(first_reads),
            fill_avoid_bound=len(full_store_granules | aliased),
            writeback_kill_bound=len(store_granules | aliased),
        )
    return prediction
