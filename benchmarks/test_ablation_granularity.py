"""Ablation — valid/dirty-bit granularity (paper Section 3.3).

``suites/granularity.yaml`` declares the traffic-kind sweep (each
cell walks the functional trace through a stand-alone SVF at one
granule size); this file asserts the paper's shape over the run-table
rows: coarser granules must not reduce quad-word traffic.
"""


def test_granularity_ablation(
    benchmark, emit, functional_window, sweep_suite
):
    result = benchmark.pedantic(
        lambda: sweep_suite("granularity", functional_window),
        rounds=1, iterations=1,
    )
    emit("ablation_granularity", result.render_summary())
    assert result.ok, [row.error for row in result.rows if not row.ok]
    assert result.kind == "traffic"

    totals = {8: 0, 16: 0, 32: 0}
    for row in result.rows:
        totals[row.level("svf_granularity")] += row.metric("qw_total")
    assert totals[8] <= totals[16] <= totals[32], (
        "coarser granularity must not reduce traffic"
    )
    assert totals[32] > totals[8], (
        "32-byte granules should cost measurably more traffic"
    )
