"""Declarative sweep engine: suite descriptors → run table.

``run_sweep`` expands a validated :class:`repro.sweepspec.SweepSpec`
into ``"sweep"``-section :class:`TaskCell` units — one per run-table
row — and fans them over the existing parallel engine
(:mod:`repro.harness.parallel`).  Because each cell's identity bakes
in every resolved machine field, the opt level, the window and the
repetition, finished cells land in the shared cell-payload cache: a
re-run of the same suite (or any suite that crosses the same design
points) skips straight to the cached metrics, which is what makes
sweeps resumable.

Determinism contract: the *run table* (``run_table_json``) and the
rendered summary depend only on the descriptor and the simulated
metrics — row order is the canonical expansion order, never worker
scheduling — so they are byte-identical across ``--jobs`` values and
across warm re-runs.  Provenance that legitimately varies between
runs (per-row cache hits, wall times, attempt counts, worker count)
is quarantined in the separate ``meta`` payload.

A cell that fails after its retry degrades to an annotated gap row —
``error`` set, ``metrics`` null — exactly like report sections do;
the sweep still completes and the summary names every degraded row.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import UsageError
from repro.harness import chaos
from repro.harness.parallel import (
    CellOutcome,
    EngineOptions,
    TaskCell,
    run_cells,
)
from repro.harness.report import percent, render_table
from repro.sweepspec import SweepPoint, SweepSpec

#: Metric columns per sweep kind, in run-table column order.
TIMING_METRICS = (
    "instructions", "baseline_cycles", "cycles", "baseline_ipc", "ipc",
    "speedup", "svf_morphed", "svf_rerouted", "svf_fills",
    "svf_squashes", "svf_disables",
)
TRAFFIC_METRICS = ("qw_in", "qw_out", "qw_total")


def metric_names(kind: str) -> Tuple[str, ...]:
    """The fixed metric column set of one sweep kind."""
    return TIMING_METRICS if kind == "timing" else TRAFFIC_METRICS


# ---------------------------------------------------------------------------
# Per-cell execution (runs inside engine workers)
# ---------------------------------------------------------------------------


def run_sweep_cell(cell: TaskCell) -> Dict[str, Any]:
    """Compute one run-table row's metrics (the ``"sweep"`` runner).

    The cell's params carry the sweep kind, the opt level, the
    repetition and every resolved MachineSpec field; the benchmark and
    window live on the cell itself.  Returns a plain metrics dict —
    picklable, cacheable, and deterministic for a given identity.
    """
    from repro.lang.codegen import CodegenOptions
    from repro.workloads import cached_trace, workload

    params = dict(cell.params)
    kind = params.pop("kind")
    opt_level = params.pop("opt", 0)
    params.pop("rep", None)
    options = CodegenOptions(opt_level=opt_level)
    trace = cached_trace(
        workload(cell.benchmark), cell.window, options=options
    )
    if kind == "traffic":
        return _traffic_metrics(trace, params)
    return _timing_metrics(trace, params)


def _timing_metrics(trace, machine_fields: Mapping[str, Any]) -> Dict:
    """Simulate variant and svf-less baseline; report the comparison.

    The baseline is the same machine with the stack unit detached, so
    machine-level axes (width, AGU depth, ports) move both runs while
    ``svf_*`` axes move only the variant — the comparison every
    ablation in ``benchmarks/`` makes by hand.
    """
    from repro.uarch.pipeline import simulate

    baseline_config, config = _timing_config_pair(machine_fields)
    baseline = simulate(trace, baseline_config)
    run = simulate(trace, config)
    return _metrics_from_stats(baseline, run)


def _timing_config_pair(machine_fields: Mapping[str, Any]):
    """(svf-less baseline, variant) MachineConfigs for one row."""
    import dataclasses

    from repro.api import MachineSpec

    spec = MachineSpec(**dict(machine_fields))
    baseline_spec = dataclasses.replace(spec, svf_mode="none")
    return baseline_spec.config(), spec.config()


def _metrics_from_stats(baseline, run) -> Dict[str, Any]:
    """The run-table metrics dict for one (baseline, variant) pair.

    Shared verbatim between the per-cell and the batched runners so
    fused and unfused rows are byte-identical, rounding included.
    """
    return {
        "instructions": run.instructions,
        "baseline_cycles": baseline.cycles,
        "cycles": run.cycles,
        "baseline_ipc": round(baseline.ipc, 6),
        "ipc": round(run.ipc, 6),
        "speedup": round(run.speedup_over(baseline), 6),
        "svf_morphed": run.svf_morphed,
        "svf_rerouted": run.svf_rerouted,
        "svf_fills": run.svf_fills,
        "svf_squashes": run.svf_squashes,
        "svf_disables": int(run.extras.get("svf_disables", 0)),
    }


def _traffic_metrics(trace, machine_fields: Mapping[str, Any]) -> Dict:
    """Walk the trace through a stand-alone SVF; report quad-words."""
    from repro.core.svf import StackValueFile
    from repro.trace.regions import is_stack_address

    svf = StackValueFile(
        capacity_bytes=machine_fields["svf_capacity"],
        granularity=machine_fields["svf_granularity"],
    )
    sp_seen = False
    for record in trace:
        if not sp_seen:
            svf.update_sp(record.sp_value)
            sp_seen = True
        if record.is_mem and is_stack_address(record.addr):
            svf.access(record.addr, record.size, record.is_store)
        if record.sp_update:
            svf.update_sp(record.sp_value)
    return {
        "qw_in": svf.qw_in,
        "qw_out": svf.qw_out,
        "qw_total": svf.qw_in + svf.qw_out,
    }


def run_sweep_batch_cell(cell: TaskCell) -> Dict[Tuple, Dict[str, Any]]:
    """Compute one fused group of timing rows (``"sweep-batch"``).

    The cell's ``members`` param enumerates the params tuples of the
    plain ``"sweep"`` cells it fuses — all sharing this cell's
    (benchmark, window, opt, rep), differing only in machine fields.
    The runner attaches the trace once, loads warm members straight
    from the per-member cell cache (counting ``cell_cache_hits`` /
    ``cell_cache_misses`` exactly as the engine would), simulates all
    cold members' (baseline, variant) config pairs through one
    :func:`repro.uarch.pipeline.simulate_batch` pass, and stores each
    cold member's metrics back under its own cell key — so a fused
    group and its unfused members are interchangeable in the cache.

    Failures stay per-member: a member whose spec or simulation fails
    degrades to an error entry (same ``Type: message`` format the
    engine uses) without touching its group-mates; if the batched pass
    itself fails, cold members fall back to sequential per-member
    execution through the registered ``"sweep"`` runner.  That same
    registry lookup is the interposition seam: when the ``"sweep"``
    runner has been replaced (tests and tooling interpose on per-cell
    execution), every cold member runs through the replacement
    instead of the fused path.

    Returns ``{member_params: entry}`` where each entry carries
    ``ok``/``metrics``-or-``error`` plus ``cache_hit`` provenance;
    :func:`run_sweep` fans the entries back out to run-table rows.
    """
    from repro import profiling
    from repro.harness import parallel
    from repro.lang.codegen import CodegenOptions
    from repro.uarch.pipeline import simulate_batch
    from repro.workloads import cached_trace, get_disk_trace_cache, workload

    params = dict(cell.params)
    members: Sequence[Tuple] = params["members"]
    opt_level = params.get("opt", 0)
    member_cells = [
        TaskCell("sweep", cell.benchmark, cell.window, member)
        for member in members
    ]

    cache = get_disk_trace_cache()
    profiler = profiling.active()

    def _count(name: str, n: int = 1) -> None:
        if profiler is not None:
            profiler.count(name, n)

    entries: Dict[Tuple, Dict[str, Any]] = {}
    cold: List[TaskCell] = []
    for member in member_cells:
        if member.params in entries:
            continue
        # Mirror the engine's per-cell ordering: chaos hook first,
        # then the cache lookup, so a fused member behaves like the
        # plain cell it replaces.
        chaos.on_cell_start(member)
        payload = (
            cache.load_cell(member) if cache is not None
            else parallel._MISS
        )
        if payload is not parallel._MISS:
            _count("cell_cache_hits")
            entries[member.params] = {
                "ok": True, "metrics": payload, "cache_hit": True,
            }
        else:
            _count("cell_cache_misses")
            cold.append(member)

    if not cold:
        return entries

    # Mirror the engine's retry policy so a member that degrades here
    # reports the same attempt count (the summary annotates it) as the
    # plain cell it replaces.
    retries = parallel.EngineOptions().retries

    def _fail(member: TaskCell, exc: Exception, attempts: int) -> None:
        entries[member.params] = {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "cache_hit": False,
            "attempts": attempts,
        }

    def _done(
        member: TaskCell, metrics: Dict[str, Any], attempts: int = 1
    ) -> None:
        if cache is not None:
            cache.store_cell(member, metrics)
        entries[member.params] = {
            "ok": True, "metrics": metrics, "cache_hit": False,
            "attempts": attempts,
        }

    runner = parallel._CELL_RUNNERS.get("sweep", run_sweep_cell)

    def _run_members_sequentially(pending: Sequence[TaskCell]) -> None:
        for member in pending:
            for attempt in range(1, retries + 2):
                try:
                    metrics = runner(member)
                except Exception as exc:
                    if attempt > retries:
                        _fail(member, exc, attempt)
                else:
                    _done(member, metrics, attempt)
                    break

    if runner is not parallel._cell_sweep:
        # Someone interposed on per-cell sweep execution; fusion
        # defers to per-cell execution so the interposition sees
        # every member.
        _run_members_sequentially(cold)
        return entries

    trace = cached_trace(
        workload(cell.benchmark), cell.window,
        options=CodegenOptions(opt_level=opt_level),
    )
    paired: List[Tuple[TaskCell, Any, Any]] = []
    for member in cold:
        fields = dict(member.params)
        fields.pop("kind", None)
        fields.pop("opt", None)
        fields.pop("rep", None)
        try:
            baseline_config, config = _timing_config_pair(fields)
        except Exception as exc:
            # Deterministic construction failure: the engine would have
            # retried and failed identically, so report its count.
            _fail(member, exc, 1 + retries)
            continue
        paired.append((member, baseline_config, config))

    if paired:
        configs: List[Any] = []
        for _member, baseline_config, config in paired:
            configs.append(baseline_config)
            configs.append(config)
        try:
            results = simulate_batch(trace, configs)
        except Exception:
            # The batched pass failed as a whole (it cannot tell which
            # config is at fault) — recompute members one by one so
            # only the offender degrades.
            _run_members_sequentially([member for member, _, _ in paired])
        else:
            for slot, (member, _, _) in enumerate(paired):
                baseline = results[2 * slot]
                run = results[2 * slot + 1]
                try:
                    metrics = _metrics_from_stats(baseline, run)
                except Exception as exc:
                    _fail(member, exc, 1 + retries)
                else:
                    _done(member, metrics)
    return entries


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


def point_cell(spec: SweepSpec, point: SweepPoint) -> TaskCell:
    """The engine cell for one run-table row.

    Params spell out the full resolved machine (not just the swept
    axes) plus kind/opt/rep, so the cell-cache key is the complete
    design-point identity: suites with different bases never collide,
    and suites crossing the same point share cached metrics.
    """
    if spec.kind == "traffic":
        machine = tuple(
            (name, value) for name, value in point.machine
            if name in ("svf_capacity", "svf_granularity")
        )
    else:
        machine = point.machine
    params = (
        ("kind", spec.kind),
        ("opt", point.opt_level),
        ("rep", point.repetition),
    ) + machine
    return TaskCell("sweep", point.workload, spec.window, params)


def plan_cells(spec: SweepSpec) -> Tuple[List[SweepPoint], List[TaskCell]]:
    """Expand the suite: canonical row order plus a cache-friendly
    submission order (combo-major, so cold workers touch distinct
    benchmarks before piling onto one trace)."""
    points = spec.expand()
    order = sorted(
        range(len(points)),
        key=lambda index: (
            points[index].levels,
            points[index].opt_level,
            points[index].repetition,
        ),
    )
    cells = [point_cell(spec, points[index]) for index in order]
    return points, cells


def _fuse_cells(
    spec: SweepSpec, cells: Sequence[TaskCell]
) -> Tuple[List[TaskCell], Dict[TaskCell, TaskCell]]:
    """Group timing cells that share (workload, opt, rep) into fused
    ``"sweep-batch"`` cells — one trace attach + one batched pass per
    group instead of one walk per row.

    Fusion is submission-shape only: the per-member cell-cache keys,
    row identities and row bytes are untouched (the batch runner fans
    results back out per member).  Groups of one stay plain cells.
    Returns the submission list (group order follows the first member,
    preserving :func:`plan_cells`'s cache-friendly ordering) and the
    member-cell → batch-cell map the fan-in uses.
    """
    groups: Dict[Tuple, List[TaskCell]] = {}
    for cell in cells:
        params = dict(cell.params)
        key = (cell.benchmark, params.get("opt", 0), params.get("rep", 0))
        groups.setdefault(key, []).append(cell)
    submit: List[TaskCell] = []
    batch_of: Dict[TaskCell, TaskCell] = {}
    emitted = set()
    for cell in cells:
        params = dict(cell.params)
        key = (cell.benchmark, params.get("opt", 0), params.get("rep", 0))
        if key in emitted:
            continue
        emitted.add(key)
        members = groups[key]
        if len(members) == 1:
            submit.append(cell)
            continue
        benchmark, opt_level, repetition = key
        batch = TaskCell(
            "sweep-batch", benchmark, spec.window,
            (
                ("kind", spec.kind),
                ("opt", opt_level),
                ("rep", repetition),
                ("members", tuple(member.params for member in members)),
            ),
        )
        submit.append(batch)
        for member in members:
            batch_of[member] = batch
    return submit, batch_of


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepRow:
    """One run-table row: identity, metrics (or an annotated gap)."""

    workload: str
    opt_level: int
    repetition: int
    levels: Tuple[Tuple[str, Any], ...]
    metrics: Optional[Mapping[str, Any]] = None
    error: Optional[str] = None
    #: provenance (varies run to run; excluded from the run table)
    cache_hit: bool = False
    elapsed: float = 0.0
    attempts: int = 1

    def __post_init__(self):
        # Gap-row invariant: a row either carries metrics or names its
        # failure — never both, never neither.  A row violating this
        # would render as a silent blank instead of an annotated gap.
        if (self.metrics is None) == (self.error is None):
            raise ValueError(
                f"sweep row {self.workload!r} must set exactly one of "
                f"metrics/error (metrics={self.metrics!r}, "
                f"error={self.error!r})"
            )

    @property
    def ok(self) -> bool:
        return self.error is None

    def metric(self, name: str, default: Any = None) -> Any:
        if self.metrics is None:
            return default
        return self.metrics.get(name, default)

    def level(self, name: str, default: Any = None) -> Any:
        """The row's assignment for one grid axis."""
        return dict(self.levels).get(name, default)

    def label(self) -> str:
        """Human-readable row identity for annotations/progress."""
        parts = [self.workload]
        if self.opt_level:
            parts.append(f"-O{self.opt_level}")
        if self.levels:
            parts.append(
                "[" + ", ".join(f"{axis}={value}"
                                for axis, value in self.levels) + "]"
            )
        if self.repetition:
            parts.append(f"rep{self.repetition}")
        return " ".join(parts)

    def table_dict(self) -> Dict[str, Any]:
        """Deterministic run-table form (no timing, no cache flags)."""
        return {
            "workload": self.workload,
            "opt_level": self.opt_level,
            "repetition": self.repetition,
            "levels": {axis: value for axis, value in self.levels},
            "metrics": dict(self.metrics) if self.metrics is not None
            else None,
            "error": self.error,
        }

    def meta_dict(self) -> Dict[str, Any]:
        """Provenance form (cache hit, wall time, attempts)."""
        return {
            "workload": self.workload,
            "opt_level": self.opt_level,
            "repetition": self.repetition,
            "levels": {axis: value for axis, value in self.levels},
            "cache_hit": self.cache_hit,
            "elapsed_seconds": round(self.elapsed, 6),
            "attempts": self.attempts,
        }


@dataclass(frozen=True)
class SweepOptions:
    """Frozen knobs for one sweep run (``repro sweep``).

    ``jobs`` is the parallel-engine worker count (``None`` means
    ``os.cpu_count()``, ``1`` runs inline); the run table is
    byte-identical for every value.  ``use_cache`` gates the shared
    on-disk cache — with it on, completed cells of an interrupted or
    repeated sweep are skipped (resumability); ``cache_dir=None`` with
    ``use_cache=True`` resolves to the default per-user directory.
    ``out_dir`` is where artifacts land (``None`` writes nothing —
    callers consume the :class:`SweepResult` directly).
    """

    jobs: Optional[int] = None
    cache_dir: Optional[str] = None
    use_cache: bool = True
    task_timeout: float = 600.0
    out_dir: Optional[str] = None
    #: deterministic fault plan forwarded to the engine (chaos runs).
    fault_plan: Optional[chaos.FaultPlan] = None
    #: fuse timing cells sharing (workload, opt, rep) into one batched
    #: trace pass (``--no-batch`` turns this off); the run table is
    #: byte-identical either way.
    batch: bool = True

    def __post_init__(self):
        if self.jobs is not None and self.jobs < 1:
            raise UsageError(f"jobs must be >= 1, not {self.jobs!r}")

    def resolved_cache_dir(self) -> Optional[str]:
        """The effective cache root, or ``None`` when caching is off."""
        if not self.use_cache:
            return None
        if self.cache_dir is not None:
            return self.cache_dir
        from repro.harness.parallel import default_cache_dir

        return default_cache_dir()


@dataclass(frozen=True)
class SweepResult:
    """A finished sweep: the run table plus run provenance."""

    suite: str
    kind: str
    description: str
    window: int
    repetitions: int
    workloads: Tuple[str, ...]
    factors: Tuple[str, ...]
    rows: Tuple[SweepRow, ...]
    #: provenance (never enters the run table)
    jobs: int = 1
    elapsed_seconds: float = 0.0
    source: str = ""
    #: corrupt cache entries detected and unlinked during the run.
    corrupt_dropped: int = 0

    @property
    def ok(self) -> bool:
        """Every row carries metrics (no degraded gaps)."""
        return all(row.ok for row in self.rows)

    @property
    def cache_hits(self) -> int:
        return sum(1 for row in self.rows if row.cache_hit)

    def run_table(self) -> Dict[str, Any]:
        """The versioned, deterministic run-table payload."""
        from repro.api import versioned

        return versioned({
            "kind": "sweep",
            "suite": self.suite,
            "sweep_kind": self.kind,
            "description": self.description,
            "window": self.window,
            "repetitions": self.repetitions,
            "workloads": list(self.workloads),
            "factors": list(self.factors),
            "metrics": list(metric_names(self.kind)),
            "ok": self.ok,
            "rows": [row.table_dict() for row in self.rows],
        })

    def run_table_json(self, indent: int = 2) -> str:
        """Byte-stable JSON of :meth:`run_table` (sorted keys)."""
        return json.dumps(self.run_table(), indent=indent, sort_keys=True)

    def meta(self) -> Dict[str, Any]:
        """The versioned provenance payload (varies run to run)."""
        from repro.api import versioned

        return versioned({
            "kind": "sweep-meta",
            "suite": self.suite,
            "jobs": self.jobs,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "cells": len(self.rows),
            "cache_hits": self.cache_hits,
            "corrupt_dropped": self.corrupt_dropped,
            "source": self.source,
            "rows": [row.meta_dict() for row in self.rows],
        })

    def meta_json(self, indent: int = 2) -> str:
        return json.dumps(self.meta(), indent=indent, sort_keys=True)

    def render_summary(self) -> str:
        """Deterministic text summary: one table cell per design point.

        Timing sweeps show the speedup over the svf-less baseline;
        traffic sweeps show total quad-words.  Repetitions average
        (the simulator is deterministic, so this is a formality).
        Degraded rows render as ``--`` and are annotated below, the
        way report sections annotate failed cells.
        """
        combos: List[Tuple[Tuple[str, Any], ...]] = []
        for row in self.rows:
            if row.levels not in combos:
                combos.append(row.levels)
        headers = ["Benchmark"] + [
            ", ".join(f"{axis}={value}" for axis, value in combo)
            or "(base)"
            for combo in combos
        ]

        grouped: Dict[Tuple[str, int], Dict[Tuple, List[SweepRow]]] = {}
        for row in self.rows:
            group = grouped.setdefault((row.workload, row.opt_level), {})
            group.setdefault(row.levels, []).append(row)

        table_rows = []
        degraded: List[SweepRow] = []
        for (workload, opt_level), by_combo in grouped.items():
            label = workload if not opt_level else f"{workload} -O{opt_level}"
            cells = [label]
            for combo in combos:
                rows = by_combo.get(combo, [])
                values = [
                    row.metric(
                        "speedup" if self.kind == "timing" else "qw_total"
                    )
                    for row in rows if row.ok
                ]
                degraded.extend(row for row in rows if not row.ok)
                if not values:
                    cells.append("--")
                elif self.kind == "timing":
                    cells.append(percent(sum(values) / len(values)))
                else:
                    cells.append(str(round(sum(values) / len(values))))
            table_rows.append(tuple(cells))

        title = (
            f"Sweep {self.suite} ({self.kind}): "
            f"{len(self.workloads)} workloads x {len(combos)} configs "
            f"x {self.repetitions} reps, window {self.window:,}"
        )
        text = render_table(headers, table_rows, title=title)
        for row in degraded:
            text += (
                f"\n(degraded: row {row.label()} failed after "
                f"{row.attempts} attempt"
                f"{'s' if row.attempts != 1 else ''} — {row.error})"
            )
        return text

    def write_artifacts(self, out_dir: str) -> List[str]:
        """Persist run table, meta and summary under ``out_dir``.

        ``run_table.json`` and ``summary.txt`` are deterministic;
        ``run_meta.json`` carries the provenance that may vary.
        Returns the written paths.
        """
        root = Path(out_dir)
        root.mkdir(parents=True, exist_ok=True)
        written = []
        for filename, text in (
            ("run_table.json", self.run_table_json() + "\n"),
            ("run_meta.json", self.meta_json() + "\n"),
            ("summary.txt", self.render_summary() + "\n"),
        ):
            path = root / filename
            path.write_text(text)
            written.append(str(path))
        return written


# ---------------------------------------------------------------------------
# The engine entry point
# ---------------------------------------------------------------------------


def _outcome_counters(outcome: CellOutcome) -> Mapping[str, int]:
    phases = outcome.phases or {}
    counters = (
        phases.get("counters", {}) if isinstance(phases, dict) else {}
    )
    return counters if isinstance(counters, dict) else {}


def _cache_hit(outcome: CellOutcome) -> bool:
    """Did this cell's payload come from the cell cache?"""
    return bool(_outcome_counters(outcome).get("cell_cache_hits", 0))


def _corrupt_dropped(outcomes: Sequence[CellOutcome]) -> int:
    """Corrupt cache entries the run's workers detected and unlinked."""
    return sum(
        _outcome_counters(outcome).get("cache_corrupt_dropped", 0)
        for outcome in outcomes
    )


def run_sweep(
    spec: SweepSpec,
    options: Optional[SweepOptions] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Execute a validated suite descriptor; returns the run table.

    Rows come back in canonical expansion order regardless of worker
    scheduling; a cell that fails after its retry degrades to a gap
    row (``error`` set) instead of aborting the sweep.  With the disk
    cache enabled, completed cells of a previous identical run are
    reused — an interrupted sweep resumes where it left off.
    """
    options = options if options is not None else SweepOptions()
    started = time.perf_counter()
    points, cells = plan_cells(spec)
    # Fuse timing groups into batched cells: a submission-shape
    # optimization only (row identities, cache keys and run-table
    # bytes are invariant).  Chaos runs stay unfused — fault plans
    # target the per-cell keys :func:`plan_cells` enumerates.
    from repro.uarch.pipeline import batch_enabled

    fuse = (
        spec.kind == "timing"
        and options.batch
        and batch_enabled()
        and options.fault_plan is None
    )
    batch_of: Dict[TaskCell, TaskCell] = {}
    submit = list(cells)
    if fuse:
        submit, batch_of = _fuse_cells(spec, cells)
    engine = EngineOptions(
        jobs=options.jobs,
        cache_dir=options.resolved_cache_dir(),
        task_timeout=options.task_timeout,
        fault_plan=options.fault_plan,
    )
    if progress is not None:
        fused_note = (
            f" fused into {len(submit)}" if len(submit) != len(cells)
            else ""
        )
        progress(
            f"sweep {spec.name}: {len(cells)} cells{fused_note} over "
            f"{len(spec.workloads)} workloads "
            f"({engine.effective_jobs()} jobs, cache "
            f"{engine.cache_dir if engine.cache_dir else 'off'})"
        )
    outcomes = run_cells(submit, engine, progress=progress)
    by_cell = {outcome.cell: outcome for outcome in outcomes}

    rows = []
    for point in points:
        cell = point_cell(spec, point)
        batch_cell = batch_of.get(cell)
        outcome = by_cell.get(batch_cell if batch_cell is not None
                              else cell)
        if outcome is None:
            raise RuntimeError(
                f"engine invariant violated: no outcome for planned "
                f"cell {cell.label} — every submitted cell must come "
                f"back as a payload or an annotated gap"
            )
        if batch_cell is None:
            rows.append(SweepRow(
                workload=point.workload,
                opt_level=point.opt_level,
                repetition=point.repetition,
                levels=point.levels,
                metrics=outcome.payload if outcome.ok else None,
                error=outcome.error,
                cache_hit=_cache_hit(outcome),
                elapsed=outcome.elapsed,
                attempts=outcome.attempts,
            ))
            continue
        group_size = max(1, len(dict(batch_cell.params)["members"]))
        attempts = outcome.attempts
        if not outcome.ok:
            # The whole fused cell died at the engine level (timeout,
            # lost worker): every member degrades with that error.
            metrics, error, cache_hit = None, outcome.error, False
        else:
            entry = (
                outcome.payload.get(cell.params)
                if isinstance(outcome.payload, Mapping) else None
            )
            if entry is None:
                metrics = None
                error = (
                    "batch invariant violated: fused cell returned no "
                    f"entry for member {cell.label}"
                )
                cache_hit = False
            elif entry.get("ok"):
                metrics = entry.get("metrics")
                error = None
                cache_hit = bool(entry.get("cache_hit", False))
                attempts = int(entry.get("attempts", 1))
            else:
                metrics = None
                error = entry.get("error", "unknown batch member error")
                cache_hit = False
                attempts = int(entry.get("attempts", outcome.attempts))
        rows.append(SweepRow(
            workload=point.workload,
            opt_level=point.opt_level,
            repetition=point.repetition,
            levels=point.levels,
            metrics=metrics,
            error=error,
            cache_hit=cache_hit,
            elapsed=outcome.elapsed / group_size,
            attempts=attempts,
        ))

    result = SweepResult(
        suite=spec.name,
        kind=spec.kind,
        description=spec.description,
        window=spec.window,
        repetitions=spec.repetitions,
        workloads=spec.workloads,
        factors=spec.factor_names,
        rows=tuple(rows),
        jobs=engine.effective_jobs(),
        elapsed_seconds=time.perf_counter() - started,
        source=spec.source,
        corrupt_dropped=_corrupt_dropped(outcomes),
    )
    if options.out_dir is not None:
        written = result.write_artifacts(options.out_dir)
        if progress is not None:
            progress("wrote " + ", ".join(
                os.path.basename(path) for path in written
            ) + f" under {options.out_dir}")
    return result


__all__ = [
    "SweepOptions",
    "SweepResult",
    "SweepRow",
    "TIMING_METRICS",
    "TRAFFIC_METRICS",
    "metric_names",
    "plan_cells",
    "point_cell",
    "run_sweep",
    "run_sweep_batch_cell",
    "run_sweep_cell",
]
