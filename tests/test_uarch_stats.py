"""Unit tests for SimStats and the report helpers."""

import pytest

from repro.harness.report import percent, render_series, render_table
from repro.uarch.stats import SimStats


class TestSimStats:
    def test_ipc(self):
        stats = SimStats(instructions=100, cycles=25)
        assert stats.ipc == 4.0

    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_speedup_over(self):
        fast = SimStats(instructions=100, cycles=80)
        slow = SimStats(instructions=100, cycles=100)
        assert fast.speedup_over(slow) == pytest.approx(1.25)
        assert slow.speedup_over(fast) == pytest.approx(0.8)

    def test_speedup_requires_same_window(self):
        first = SimStats(instructions=100, cycles=50)
        second = SimStats(instructions=200, cycles=50)
        with pytest.raises(ValueError, match="window"):
            first.speedup_over(second)

    def test_fast_fraction(self):
        stats = SimStats(
            svf_fast_loads=60, svf_fast_stores=20, svf_rerouted=20
        )
        assert stats.svf_fast_fraction == 0.8

    def test_fast_fraction_empty(self):
        assert SimStats().svf_fast_fraction == 0.0

    def test_extras_dict_is_per_instance(self):
        first = SimStats()
        second = SimStats()
        first.extras["x"] = 1
        assert "x" not in second.extras


class TestRenderTable:
    def test_column_alignment(self):
        text = render_table(
            ["Name", "Value"], [("a", 1), ("longer", 22)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        positions = [line.index("1") if "1" in line else None
                     for line in lines]
        # 'Value' column starts at the same offset in every row.
        assert lines[2].index("-") == 0

    def test_floats_formatted(self):
        text = render_table(["x"], [(1.23456,)])
        assert "1.235" in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestRenderSeries:
    def test_constant_series(self):
        text = render_series("flat", [5.0, 5.0, 5.0])
        assert "flat" in text and "[5..5]" in text

    def test_downsampling(self):
        text = render_series("long", list(range(500)), width=40)
        # name + ': ' + 40 chars + suffix
        body = text.split(": ", 1)[1]
        assert len(body.split(" [")[0]) == 40

    def test_empty_series(self):
        assert "(empty)" in render_series("none", [])


class TestPercent:
    @pytest.mark.parametrize(
        "value,expected",
        [(1.0, "+0.0%"), (1.5, "+50.0%"), (0.9, "-10.0%"), (2.0, "+100.0%")],
    )
    def test_formatting(self, value, expected):
        assert percent(value) == expected
