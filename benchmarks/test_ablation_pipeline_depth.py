"""Ablation — pipeline depth (the paper's closing claim).

"For a deeper pipelined processors, our technique should deliver
increasing performance gain as the value of early address computation
is increased." (paper Section 7.)  Deep pipelines place address
generation several stages past dispatch (the register-tracking work
the paper cites measured 8 stages between decode and execution on a
deep design); morphed SVF references resolve their address in decode
and skip those stages.
"""

from repro.harness import percent, render_table
from repro.uarch.config import table2_config
from repro.uarch.pipeline import simulate
from repro.workloads import cached_trace, workload

BENCHMARKS = ["186.crafty", "176.gcc", "300.twolf", "175.vpr"]
DEPTHS = (0, 4, 8)


def run_ablation(window):
    rows = []
    for name in BENCHMARKS:
        trace = cached_trace(workload(name), window)
        speedups = []
        for depth in DEPTHS:
            base = table2_config(16, agu_depth=depth)
            baseline = simulate(trace, base)
            svf = simulate(trace, base.with_svf(mode="svf", ports=2))
            speedups.append(svf.speedup_over(baseline))
        rows.append((name, speedups))
    return rows


def test_pipeline_depth_ablation(benchmark, emit, timing_window):
    rows = benchmark.pedantic(
        lambda: run_ablation(timing_window), rounds=1, iterations=1
    )
    emit(
        "ablation_pipeline_depth",
        render_table(
            ["Benchmark"] + [f"AGU depth {d}" for d in DEPTHS],
            [(n, *[percent(v) for v in s]) for n, s in rows],
            title="Ablation: SVF (2+2) speedup vs address-generation "
            "pipeline depth (16-wide)",
        ),
    )
    shallow = sum(s[0] for _, s in rows) / len(rows)
    deep = sum(s[-1] for _, s in rows) / len(rows)
    assert deep > shallow, (
        "deeper pipelines should increase the SVF's value"
    )
    for name, speedups in rows:
        assert speedups[-1] >= speedups[0] - 0.02, name
