"""Unit tests for the trace analyses behind Figures 1-3."""

from repro.emulator.memory import STACK_BASE
from repro.isa.instructions import OpClass
from repro.isa.registers import FP, SP
from repro.trace.analysis import (
    AccessDistribution,
    MultiSink,
    OffsetLocality,
    StackDepthProfile,
)
from repro.trace.records import TraceRecord
from repro.trace.regions import AccessMethod


def make_record(index=0, is_load=False, is_store=False, addr=0,
                base_reg=None, sp_value=STACK_BASE, sp_update=False,
                op="addq", op_class=OpClass.IALU):
    return TraceRecord(
        index=index, pc=0x1000 + 4 * index, op=op, op_class=op_class,
        srcs=(), dst=None, is_load=is_load, is_store=is_store, addr=addr,
        size=8, base_reg=base_reg, sp_value=sp_value, sp_update=sp_update,
    )


class TestAccessDistribution:
    def test_counts_by_method(self):
        dist = AccessDistribution()
        dist.append(make_record(0))  # non-memory
        dist.append(make_record(1, is_load=True, addr=STACK_BASE - 8,
                                base_reg=SP))
        dist.append(make_record(2, is_store=True, addr=STACK_BASE - 16,
                                base_reg=FP))
        dist.append(make_record(3, is_load=True, addr=STACK_BASE - 24,
                                base_reg=3))
        dist.append(make_record(4, is_load=True, addr=0x10000000,
                                base_reg=3))
        assert dist.total_instructions == 5
        assert dist.memory_references == 4
        assert dist.memory_fraction == 0.8
        assert dist.counts[AccessMethod.STACK_SP] == 1
        assert dist.counts[AccessMethod.STACK_FP] == 1
        assert dist.counts[AccessMethod.STACK_GPR] == 1
        assert dist.counts[AccessMethod.GLOBAL] == 1
        assert dist.stack_fraction == 0.75

    def test_sp_fraction_of_stack(self):
        dist = AccessDistribution()
        for i in range(8):
            dist.append(make_record(i, is_load=True, addr=STACK_BASE - 8,
                                    base_reg=SP))
        dist.append(make_record(9, is_load=True, addr=STACK_BASE - 8,
                                base_reg=3))
        assert abs(dist.sp_fraction_of_stack - 8 / 9) < 1e-9

    def test_empty_distribution(self):
        dist = AccessDistribution()
        assert dist.memory_fraction == 0.0
        assert dist.stack_fraction == 0.0
        assert dist.sp_fraction_of_stack == 0.0


class TestStackDepthProfile:
    def test_depth_in_64bit_units(self):
        profile = StackDepthProfile(stack_base=STACK_BASE)
        profile.append(make_record(0, sp_value=STACK_BASE - 80,
                                   sp_update=True))
        assert profile.samples == [(0, 10)]
        assert profile.max_depth == 10

    def test_non_updates_ignored(self):
        profile = StackDepthProfile(stack_base=STACK_BASE)
        profile.append(make_record(0, sp_value=STACK_BASE - 80))
        assert profile.samples == []

    def test_depth_series_resamples(self):
        profile = StackDepthProfile(stack_base=STACK_BASE)
        for i in range(100):
            profile.append(make_record(i, sp_value=STACK_BASE - 8 * i,
                                       sp_update=True))
        series = profile.depth_series(points=10)
        assert len(series) == 10
        assert series[0] == 0
        assert series[-1] > series[0]

    def test_stable_range_skips_initialization(self):
        profile = StackDepthProfile(stack_base=STACK_BASE)
        # Init spike to depth 100, then steady 10..20.
        profile.append(make_record(0, sp_value=STACK_BASE - 800,
                                   sp_update=True))
        for i in range(1, 50):
            depth = 10 + (i % 11)
            profile.append(make_record(i, sp_value=STACK_BASE - 8 * depth,
                                       sp_update=True))
        low, high = profile.stable_range(skip_fraction=0.2)
        assert low >= 10
        assert high <= 20

    def test_empty_profile(self):
        profile = StackDepthProfile(stack_base=STACK_BASE)
        assert profile.depth_series() == []
        assert profile.stable_range() == (0, 0)


class TestOffsetLocality:
    def test_offsets_relative_to_tos(self):
        locality = OffsetLocality()
        sp = STACK_BASE - 1024
        locality.append(make_record(0, is_load=True, addr=sp + 16,
                                    base_reg=SP, sp_value=sp))
        locality.append(make_record(1, is_store=True, addr=sp + 48,
                                    base_reg=SP, sp_value=sp))
        assert locality.total == 2
        assert locality.average_offset == 32.0

    def test_beyond_tos_counted_separately(self):
        locality = OffsetLocality()
        sp = STACK_BASE - 1024
        locality.append(make_record(0, is_load=True, addr=sp - 8,
                                    base_reg=SP, sp_value=sp))
        assert locality.total == 0
        assert locality.beyond_tos == 1

    def test_non_stack_ignored(self):
        locality = OffsetLocality()
        locality.append(make_record(0, is_load=True, addr=0x10000000,
                                    base_reg=3))
        assert locality.total == 0

    def test_fraction_within(self):
        locality = OffsetLocality()
        sp = STACK_BASE - 65536
        for offset in (0, 8, 16, 300, 9000):
            locality.append(make_record(0, is_load=True, addr=sp + offset,
                                        base_reg=SP, sp_value=sp))
        assert locality.fraction_within(16) == 3 / 5
        assert locality.fraction_within(8192) == 4 / 5

    def test_cdf_monotone_and_ends_at_one(self):
        locality = OffsetLocality()
        sp = STACK_BASE - 65536
        for offset in (0, 8, 8, 64, 512):
            locality.append(make_record(0, is_load=True, addr=sp + offset,
                                        base_reg=SP, sp_value=sp))
        cdf = locality.cdf()
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_log_cdf_grid(self):
        locality = OffsetLocality()
        sp = STACK_BASE - 65536
        for offset in (0, 8, 64, 512):
            locality.append(make_record(0, is_load=True, addr=sp + offset,
                                        base_reg=SP, sp_value=sp))
        log_cdf = locality.log_cdf(buckets=8)
        assert len(log_cdf) == 8
        assert log_cdf[-1][1] == 1.0


class TestMultiSink:
    def test_fans_out_to_all_sinks(self):
        first = AccessDistribution()
        second = AccessDistribution()
        sink = MultiSink(first, second, keep=True)
        sink.append(make_record(0, is_load=True, addr=STACK_BASE - 8,
                                base_reg=SP))
        assert first.memory_references == 1
        assert second.memory_references == 1
        assert len(sink.records) == 1

    def test_keep_false_discards(self):
        sink = MultiSink(AccessDistribution())
        sink.append(make_record(0))
        assert sink.records == []


class TestOnRealTrace:
    def test_crafty_is_sp_dominated(self, crafty_trace):
        dist = AccessDistribution()
        for record in crafty_trace:
            dist.append(record)
        assert dist.stack_fraction > 0.5
        assert dist.sp_fraction_of_stack > 0.6

    def test_crafty_depth_oscillates(self, crafty_trace):
        profile = StackDepthProfile(stack_base=STACK_BASE)
        for record in crafty_trace:
            profile.append(record)
        low, high = profile.stable_range()
        assert high - low > 50  # deep recursion swings

    def test_no_references_beyond_tos(self, crafty_trace):
        """Paper Section 2: no refs beyond the top of stack."""
        locality = OffsetLocality()
        for record in crafty_trace:
            locality.append(record)
        assert locality.beyond_tos == 0
        assert locality.total > 0
