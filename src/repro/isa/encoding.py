"""Binary encoding of the Alpha-like ISA (32-bit fixed-width words).

The emulator interprets pre-decoded instruction objects, but a binary
format matters for two reasons: it defines the pre-decode bits the
SVF's front-end relies on (Section 3.1 — "an extended pre-decode
circuit in the fetch stage is used to identify stack-pointer based
memory references and to determine their immediate offset values"),
and it pins down instruction addresses (4 bytes each) for the text
segment.

Format (loosely Alpha-flavoured)::

    31        26 25   21 20   16 15                    0
    +-----------+-------+-------+-----------------------+
    |   opcode  |  rd   |  rb   |  displacement (s16)   |   memory / lda
    +-----------+-------+-------+-----------------------+
    |   opcode  |  rd   |  ra   | 1 |   literal (s10) |x|   ALU literal
    |   opcode  |  rd   |  ra   | 0 | 0...0 |   rb      |   ALU register
    +-----------+-------+-------+-----------------------+
    |   opcode  |  ra   |     branch displacement (s21)  |  branches
    +-----------+-------+--------------------------------+

Displacements that do not fit the field raise :class:`EncodingError`
(the assembler's textual pipeline remains the general path; encoding
is exact for everything the MiniC compiler emits except absolute
``lda`` constants, which use the 64-bit extended form below).

An *extended* form encodes a 64-bit immediate in a second and third
word (a simulator convenience standing in for Alpha's ``ldah``
sequences); :func:`encode_program` and :func:`decode_program` round-
trip every program the toolchain produces.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.isa.instructions import (
    CONDITIONAL_BRANCHES,
    Instruction,
    OPCODES,
    OpClass,
)
from repro.isa.registers import RA

#: stable opcode numbering (order of the OPCODES table)
OPCODE_NUMBERS = {name: i + 1 for i, name in enumerate(OPCODES)}
OPCODE_NAMES = {number: name for name, number in OPCODE_NUMBERS.items()}

#: marker opcode for the extended (64-bit immediate) form
EXTENDED_OPCODE = 0x3F

_DISP_MIN, _DISP_MAX = -(1 << 15), (1 << 15) - 1
_LIT_MIN, _LIT_MAX = -(1 << 9), (1 << 9) - 1
_BR_MIN, _BR_MAX = -(1 << 20), (1 << 20) - 1


class EncodingError(ValueError):
    """Raised when an operand does not fit its encoding field."""


def _opcode_of(instr: Instruction) -> int:
    return OPCODE_NUMBERS[instr.op]


def encode(instr: Instruction) -> List[int]:
    """Encode one instruction into one or more 32-bit words.

    Branch targets are encoded as absolute instruction indices from
    ``instr.target_index``, so encode after label resolution.
    """
    opcode = _opcode_of(instr)
    spec = instr.spec

    if spec.mem_size > 0 or instr.op == "lda":
        displacement = instr.imm or 0
        if not _DISP_MIN <= displacement <= _DISP_MAX:
            return _encode_extended(instr)
        return [
            (opcode << 26)
            | ((instr.rd & 31) << 21)
            | ((instr.rb & 31) << 16)
            | (displacement & 0xFFFF)
        ]

    if spec.op_class in (OpClass.IALU, OpClass.IMULT):
        if instr.rb is not None:
            return [
                (opcode << 26)
                | ((instr.rd & 31) << 21)
                | ((instr.ra & 31) << 16)
                | (instr.rb & 31)
            ]
        literal = instr.imm or 0
        if not _LIT_MIN <= literal <= _LIT_MAX:
            return _encode_extended(instr)
        return [
            (opcode << 26)
            | ((instr.rd & 31) << 21)
            | ((instr.ra & 31) << 16)
            | (1 << 15)
            | ((literal & 0x3FF) << 1)
        ]

    if instr.op in CONDITIONAL_BRANCHES or instr.op in ("br", "bsr"):
        reg = instr.ra if instr.op in CONDITIONAL_BRANCHES else (instr.rd or 0)
        displacement = instr.target_index or 0
        if not _BR_MIN <= displacement <= _BR_MAX:
            raise EncodingError(f"branch target too far: {displacement}")
        return [
            (opcode << 26)
            | ((reg & 31) << 21)
            | (displacement & 0x1FFFFF)
        ]

    if instr.op in ("jsr", "jmp", "ret"):
        return [
            (opcode << 26)
            | (((instr.rd if instr.rd is not None else 0) & 31) << 21)
            | (((instr.rb if instr.rb is not None else 0) & 31) << 16)
        ]

    if instr.op == "print":
        return [(opcode << 26) | ((instr.ra & 31) << 21)]

    # halt / nop
    return [opcode << 26]


def _encode_extended(instr: Instruction) -> List[int]:
    """Three-word form: header + 64-bit immediate."""
    opcode = _opcode_of(instr)
    header = (
        (EXTENDED_OPCODE << 26)
        | (opcode << 16)
        | (((instr.rd if instr.rd is not None else 0) & 31) << 11)
        | (((instr.rb if instr.rb is not None else instr.ra or 0) & 31) << 6)
    )
    immediate = (instr.imm or 0) & 0xFFFFFFFFFFFFFFFF
    return [header, immediate & 0xFFFFFFFF, immediate >> 32]


def _sign_extend(value: int, bits: int) -> int:
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def decode(words: List[int], position: int = 0) -> Tuple[Instruction, int]:
    """Decode one instruction at ``position``; returns (instr, words used)."""
    word = words[position]
    opcode = word >> 26

    if opcode == EXTENDED_OPCODE:
        real_opcode = (word >> 16) & 0x3FF
        name = OPCODE_NAMES.get(real_opcode)
        if name is None:
            raise EncodingError(f"bad extended opcode {real_opcode}")
        rd = (word >> 11) & 31
        rb = (word >> 6) & 31
        immediate = words[position + 1] | (words[position + 2] << 32)
        if immediate & (1 << 63):
            immediate -= 1 << 64
        spec = OPCODES[name]
        if spec.mem_size > 0 or name == "lda":
            return Instruction(name, rd=rd, rb=rb, imm=immediate), 3
        return Instruction(name, ra=rb, imm=immediate, rd=rd), 3

    name = OPCODE_NAMES.get(opcode)
    if name is None:
        raise EncodingError(f"bad opcode {opcode}")
    spec = OPCODES[name]

    if spec.mem_size > 0 or name == "lda":
        rd = (word >> 21) & 31
        rb = (word >> 16) & 31
        displacement = _sign_extend(word & 0xFFFF, 16)
        return Instruction(name, rd=rd, rb=rb, imm=displacement), 1

    if spec.op_class in (OpClass.IALU, OpClass.IMULT):
        rd = (word >> 21) & 31
        ra = (word >> 16) & 31
        if word & (1 << 15):
            literal = _sign_extend((word >> 1) & 0x3FF, 10)
            return Instruction(name, ra=ra, imm=literal, rd=rd), 1
        return Instruction(name, ra=ra, rb=word & 31, rd=rd), 1

    if name in CONDITIONAL_BRANCHES:
        ra = (word >> 21) & 31
        target = _sign_extend(word & 0x1FFFFF, 21)
        instr = Instruction(name, ra=ra, target="?")
        instr.target_index = target
        return instr, 1

    if name in ("br", "bsr"):
        reg = (word >> 21) & 31
        target = _sign_extend(word & 0x1FFFFF, 21)
        instr = Instruction(
            name, rd=(RA if name == "bsr" else None), target="?"
        )
        instr.target_index = target
        return instr, 1

    if name in ("jsr", "jmp", "ret"):
        rd = (word >> 21) & 31
        rb = (word >> 16) & 31
        return Instruction(
            name,
            rd=(rd if name == "jsr" else None),
            rb=rb if rb != 0 or name != "ret" else RA,
        ), 1

    if name == "print":
        return Instruction(name, ra=(word >> 21) & 31), 1

    return Instruction(name), 1


def is_sp_relative_memory(word: int) -> bool:
    """The SVF's pre-decode check (Section 3.1), straight off the bits.

    True if the word is a load/store whose base register is ``$sp`` —
    the references the front-end diverts to the SVF without waiting
    for decode.
    """
    opcode = word >> 26
    name = OPCODE_NAMES.get(opcode)
    if name is None:
        return False
    spec = OPCODES[name]
    if spec.mem_size == 0:
        return False
    return (word >> 16) & 31 == 30  # $sp


def encode_program(instructions: List[Instruction]) -> bytes:
    """Encode an instruction list to little-endian bytes."""
    words: List[int] = []
    for instr in instructions:
        words.extend(encode(instr))
    return struct.pack(f"<{len(words)}I", *words)


def decode_program(blob: bytes) -> List[Instruction]:
    """Decode bytes produced by :func:`encode_program`."""
    count = len(blob) // 4
    words = list(struct.unpack(f"<{count}I", blob))
    out: List[Instruction] = []
    position = 0
    while position < len(words):
        instr, used = decode(words, position)
        out.append(instr)
        position += used
    return out
