"""Ablation — dynamic SVF disable (paper Section 3.3).

``suites/adaptive.yaml`` sweeps the ``svf_adaptive`` toggle; this
file asserts over the run-table rows that the controller recovers
eon's squash losses without recompilation while leaving squash-free
benchmarks untouched.
"""


def test_adaptive_disable(benchmark, emit, timing_window, sweep_suite):
    result = benchmark.pedantic(
        lambda: sweep_suite("adaptive", timing_window),
        rounds=1, iterations=1,
    )
    emit("ablation_adaptive", result.render_summary())
    assert result.ok, [row.error for row in result.rows if not row.ok]

    rows = {}
    for row in result.rows:
        rows[(row.workload, row.level("svf_adaptive"))] = row

    # eon: the adaptive controller must trigger and improve on plain.
    eon_plain = rows[("252.eon", False)]
    eon_adaptive = rows[("252.eon", True)]
    assert eon_plain.metric("svf_squashes") > 0
    assert eon_adaptive.metric("svf_disables") > 0
    assert eon_adaptive.metric("speedup") >= eon_plain.metric("speedup")
    # Squash-free benchmarks are untouched by the controller.
    for name in ("186.crafty", "176.gcc"):
        plain = rows[(name, False)]
        adaptive = rows[(name, True)]
        if plain.metric("svf_squashes") == 0:
            assert adaptive.metric("svf_disables") == 0
            assert abs(
                adaptive.metric("speedup") - plain.metric("speedup")
            ) < 0.01
