"""175.vpr — FPGA placement and routing (grid breadth-first expansion).

Models VPR's router: wavefront expansion across a routing grid with a
work queue in the router's frame and cost lookups in global arrays.
Moderate frames, loop-heavy, light recursion.
"""

from __future__ import annotations

from repro.workloads.common import rand_source

_TEMPLATE = """
int grid_cost[{grid_words}];
int grid_dist[{grid_words}];
int routed_nets = 0;

int cell_index(int x, int y) {{
    return y * {width} + x;
}}

int route_net(int sx, int sy, int tx, int ty) {{
    int queue_x[{queue}];
    int queue_y[{queue}];
    int head = 0;
    int tail = 0;
    for (int i = 0; i < {grid_words}; i += 1) {{
        grid_dist[i] = 1000000000;
    }}
    grid_dist[cell_index(sx, sy)] = 0;
    queue_x[tail] = sx;
    queue_y[tail] = sy;
    tail += 1;
    while (head < tail) {{
        int x = queue_x[head];
        int y = queue_y[head];
        head += 1;
        int here = grid_dist[cell_index(x, y)];
        if (x == tx && y == ty) {{
            routed_nets += 1;
            return here;
        }}
        for (int direction = 0; direction < 4; direction += 1) {{
            int nx = x;
            int ny = y;
            if (direction == 0) {{ nx = x + 1; }}
            if (direction == 1) {{ nx = x - 1; }}
            if (direction == 2) {{ ny = y + 1; }}
            if (direction == 3) {{ ny = y - 1; }}
            if (nx >= 0 && nx < {width} && ny >= 0 && ny < {height}) {{
                int idx = cell_index(nx, ny);
                int cost = here + grid_cost[idx];
                if (cost < grid_dist[idx] && tail < {queue}) {{
                    grid_dist[idx] = cost;
                    queue_x[tail] = nx;
                    queue_y[tail] = ny;
                    tail += 1;
                }}
            }}
        }}
    }}
    return -1;
}}

int main() {{
    for (int i = 0; i < {grid_words}; i += 1) {{
        grid_cost[i] = 1 + (rand31() & 7);
    }}
    int total_cost = 0;
    int failures = 0;
    for (int net = 0; net < {nets}; net += 1) {{
        int sx = rand31() % {width};
        int sy = rand31() % {height};
        int tx = rand31() % {width};
        int ty = rand31() % {height};
        int cost = route_net(sx, sy, tx, ty);
        if (cost < 0) {{
            failures += 1;
        }} else {{
            total_cost += cost;
        }}
    }}
    print(total_cost);
    print(routed_nets);
    print(failures);
    return 0;
}}
"""


def make_source(
    width: int = 12, height: int = 12, nets: int = 16, queue: int = 160,
    seed: int = 175,
) -> str:
    """Build the vpr workload."""
    return rand_source(seed) + _TEMPLATE.format(
        width=width,
        height=height,
        grid_words=width * height,
        nets=nets,
        queue=queue,
    )


INPUTS = {"ref": dict(seed=175)}
