"""Ablation — SVF capacity sensitivity (2/4/8 KB performance).

The sweep itself is declarative now: ``suites/svf_size.yaml`` names
the workloads, the capacity grid and the isolation knobs (16 ports,
no_squash); this file is a thin assert over the run-table rows the
sweep engine produces.  See the descriptor for the experimental
rationale.
"""


def test_svf_size_ablation(benchmark, emit, timing_window, sweep_suite):
    result = benchmark.pedantic(
        lambda: sweep_suite("svf_size", timing_window),
        rounds=1, iterations=1,
    )
    emit("ablation_svf_size", result.render_summary())
    assert result.ok, [row.error for row in result.rows if not row.ok]
    assert result.factors == ("svf_capacity",)

    # Rows arrive in canonical order: per workload, capacities in the
    # descriptor's declared (ascending) order.
    by_name = {}
    for row in result.rows:
        by_name.setdefault(row.workload, []).append(row.metric("speedup"))
    assert all(len(speedups) == 4 for speedups in by_name.values())

    # crafty/gcc have multi-KB active stack regions (Figure 2):
    # capacity must help monotonically until the region fits.
    for name in ("186.crafty", "176.gcc"):
        speedups = by_name[name]
        assert all(
            b >= a - 1e-9 for a, b in zip(speedups, speedups[1:])
        ), name
        assert speedups[-1] > 1.0, name
    # perlbmk's hot band hugs the TOS: capacity-insensitive.
    perl = by_name["253.perlbmk"]
    assert max(perl) - min(perl) < 0.02
    # No benchmark collapses across the sweep (eon shifts a few points
    # as evictions reshuffle its dependence chains; that is noise, not
    # a cliff).
    for name, speedups in by_name.items():
        assert max(speedups) - min(speedups) < 0.10, name
