"""Figure 5 — speedup of morphing all stack accesses (infinite SVF).

Paper shape: average speedups of 11% / 19% / 31% on 4- / 8- / 16-wide
machines with perfect prediction — the gain *grows with width* because
wider machines are more port- and latency-bound.  The 16-wide gshare
column averages 25%, below the perfect-prediction 16-wide column.
"""

from repro.harness import fig5_ideal_morphing


def test_fig5(benchmark, emit, timing_window):
    result = benchmark.pedantic(
        lambda: fig5_ideal_morphing(max_instructions=timing_window),
        rounds=1,
        iterations=1,
    )
    emit("fig5_ideal_morphing", result.render())

    averages = result.averages()
    assert averages["4-wide"] > 1.0
    assert averages["16-wide"] > averages["4-wide"], (
        "speedup should grow with machine width"
    )
    assert averages["16-wide"] > 1.05
    # gshare's shorter effective basic blocks reduce the average gain
    # relative to perfect prediction (paper: 25% vs 31%).
    assert averages["16-wide gshare"] < averages["16-wide"] * 1.15
