"""Figure 3 — offset locality of stack references.

Paper shape: over 99% of stack references fall within 8 KB of the TOS
(gcc excepted), no references land beyond the TOS, and the average
distance spans a wide range with gcc the far outlier.
"""

from repro.harness import characterize


def test_fig3(benchmark, emit, functional_window):
    result = benchmark.pedantic(
        lambda: characterize(max_instructions=functional_window),
        rounds=1,
        iterations=1,
    )
    emit("fig3_offset_locality", result.render_fig3())

    localities = result.localities
    within = [
        locality.fraction_within(8192)
        for locality in localities.values()
    ]
    for name, locality in localities.items():
        assert locality.beyond_tos == 0, f"{name}: refs beyond TOS"
    # Paper: over 99% of references within 8KB of TOS, one exception.
    assert sorted(within)[1] > 0.9, "at most one far-offset outlier"
    assert sum(within) / len(within) > 0.9

    if functional_window >= 100_000:
        # gcc's deep recursive frames give it the largest average
        # offset in the paper (380B); its fold phase needs a window
        # long enough to get past tree construction.
        gcc_offset = localities["176.gcc"].average_offset
        others = [
            loc.average_offset
            for name, loc in localities.items()
            if name not in ("176.gcc", "253.perlbmk")
        ]
        assert gcc_offset > sum(others) / len(others)
