"""Functional emulator for the Alpha-like ISA.

Executes an assembled :class:`~repro.isa.instructions.Program` and, when
given a trace sink, emits one record per retired instruction.  The
emulator is purely functional (no timing): the out-of-order timing
model in :mod:`repro.uarch` replays the emitted stream, which carries
full register- and memory-dependence information.

Static instructions are pre-decoded once into flat tuples keyed by an
*integer* structural kind (plus a precomputed ALU/branch handler), so
the interpretation loop dispatches on small-int comparisons instead of
opcode strings.  Tracing has two paths:

* a :class:`~repro.trace.columnar.ColumnarTrace` sink appends raw
  integers straight into the column buffers (no record objects);
* any other sink receives classic :class:`TraceRecord` objects, so
  streaming consumers (traffic model, analyses, trace writers) keep
  working unchanged.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional

from repro import profiling
from repro.emulator import superblock as _superblock
from repro.emulator.memory import (
    DATA_BASE,
    Memory,
    STACK_BASE,
    TEXT_BASE,
)
from repro.isa.encoding import OPCODE_NUMBERS
from repro.isa.instructions import OpClass, Program
from repro.isa.registers import RA, SP, ZERO
from repro.trace.columnar import (
    ColumnarTrace,
    FLAG_BRANCH,
    FLAG_CONDITIONAL,
    FLAG_LOAD,
    FLAG_SP_UPDATE,
    FLAG_STORE,
    FLAG_TAKEN,
)
from repro.trace.records import TraceRecord

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def _signed(value: int) -> int:
    return value - (1 << 64) if value & _SIGN64 else value


class EmulatorError(Exception):
    """Raised on runtime faults (bad jump, division by zero, ...)."""


# --------------------------------------------------------------------------
# Structural kinds: the interpretation loop dispatches on these small
# integers (ordered roughly by dynamic frequency).
# --------------------------------------------------------------------------
_K_ALU = 0
_K_LOAD = 1
_K_LDA = 2
_K_STORE = 3
_K_CBR = 4
_K_BR = 5
_K_BSR = 6
_K_JSR = 7
_K_JMP = 8  # ret / jmp (indirect, may hit the halt sentinel)
_K_PRINT = 9
_K_HALT = 10
_K_NOP = 11


# ALU handler table: one precomputed function per opcode, looked up once
# at decode time (replaces the per-instruction string-compare chain).
def _alu_addq(left, right):
    return (left + right) & _MASK64


def _alu_subq(left, right):
    return (left - right) & _MASK64


def _alu_mulq(left, right):
    return (left * right) & _MASK64


def _divide(left, right):
    divisor = _signed(right)
    if divisor == 0:
        raise EmulatorError("integer division by zero")
    dividend = _signed(left)
    quotient = abs(dividend) // abs(divisor)
    if (dividend < 0) != (divisor < 0):
        quotient = -quotient
    return dividend, divisor, quotient


def _alu_divq(left, right):
    _, _, quotient = _divide(left, right)
    return quotient & _MASK64


def _alu_remq(left, right):
    dividend, divisor, quotient = _divide(left, right)
    return (dividend - quotient * divisor) & _MASK64


def _alu_and(left, right):
    return left & right


def _alu_or(left, right):
    return left | right


def _alu_xor(left, right):
    return left ^ right


def _alu_bic(left, right):
    return left & ~right & _MASK64


def _alu_sll(left, right):
    return (left << (right & 63)) & _MASK64


def _alu_srl(left, right):
    return (left & _MASK64) >> (right & 63)


def _alu_sra(left, right):
    return (_signed(left) >> (right & 63)) & _MASK64


def _alu_cmpeq(left, right):
    return 1 if left == right else 0


def _alu_cmplt(left, right):
    return 1 if _signed(left) < _signed(right) else 0


def _alu_cmple(left, right):
    return 1 if _signed(left) <= _signed(right) else 0


def _alu_cmpult(left, right):
    return 1 if left < right else 0


_ALU_HANDLERS = {
    "addq": _alu_addq,
    "subq": _alu_subq,
    "mulq": _alu_mulq,
    "divq": _alu_divq,
    "remq": _alu_remq,
    "and": _alu_and,
    "or": _alu_or,
    "xor": _alu_xor,
    "bic": _alu_bic,
    "sll": _alu_sll,
    "srl": _alu_srl,
    "sra": _alu_sra,
    "cmpeq": _alu_cmpeq,
    "cmplt": _alu_cmplt,
    "cmple": _alu_cmple,
    "cmpult": _alu_cmpult,
}


# Conditional-branch predicates over the signed test-register value.
def _cond_beq(value):
    return value == 0


def _cond_bne(value):
    return value != 0


def _cond_blt(value):
    return value < 0


def _cond_ble(value):
    return value <= 0


def _cond_bgt(value):
    return value > 0


def _cond_bge(value):
    return value >= 0


_COND_PREDICATES = {
    "beq": _cond_beq,
    "bne": _cond_bne,
    "blt": _cond_blt,
    "ble": _cond_ble,
    "bgt": _cond_bgt,
    "bge": _cond_bge,
}

_KINDS = {
    "lda": _K_LDA,
    "br": _K_BR,
    "bsr": _K_BSR,
    "jsr": _K_JSR,
    "ret": _K_JMP,
    "jmp": _K_JMP,
    "print": _K_PRINT,
    "halt": _K_HALT,
    "nop": _K_NOP,
}


class Machine:
    """Functional machine state plus the interpretation loop."""

    def __init__(self, program: Program, stack_base: int = STACK_BASE):
        self.program = program
        self.memory = Memory()
        self.registers: List[int] = [0] * 32
        self.stack_base = stack_base
        self.registers[SP] = stack_base
        self.output: List[int] = []
        self.instruction_count = 0
        self.halted = False
        self.memory.write_bytes(DATA_BASE, bytes(program.data))
        self._decoded = [self._decode(instr) for instr in program.instructions]
        self._emit_cols = [
            self._decode_columnar(i, instr)
            for i, instr in enumerate(program.instructions)
        ]
        self._emit_records = [
            self._decode_record(i, instr)
            for i, instr in enumerate(program.instructions)
        ]
        self._pc_index = program.label_index(program.entry)
        # Sentinel return address: returning here halts the machine.
        self._halt_address = TEXT_BASE + 4 * len(program.instructions) + 4
        self.registers[RA] = self._halt_address
        # Superblock template cache, keyed on pc_index.  Text is
        # immutable, so entries are never invalidated: False = not yet
        # examined, None = region too short to template, else a
        # compiled SuperblockTemplate.
        self._superblocks: dict = {}
        self._superblock_builds = 0
        self._superblock_replays = 0
        self._superblock_replayed = 0

    @staticmethod
    def _decode(instr):
        """Execution tuple: (kind, fn, rd, ra, rb, imm, rimm, target, size).

        ``fn`` is the precomputed ALU handler or branch predicate;
        ``rimm`` is the pre-masked immediate right operand for
        immediate-form ALU ops (None for register form).
        """
        op = instr.op
        op_class = instr.op_class
        imm = instr.imm if instr.imm is not None else 0
        fn = None
        rimm = None
        if op_class is OpClass.LOAD:
            kind = _K_LOAD
        elif op_class is OpClass.STORE:
            kind = _K_STORE
        elif op in _KINDS:
            kind = _KINDS[op]
        elif op_class is OpClass.IALU or op_class is OpClass.IMULT:
            kind = _K_ALU
            fn = _ALU_HANDLERS[op]
            if instr.rb is None:
                rimm = imm & _MASK64
        elif instr.is_conditional:
            kind = _K_CBR
            fn = _COND_PREDICATES[op]
        else:  # pragma: no cover - opcode table is closed
            raise EmulatorError(f"unimplemented opcode {op!r}")
        return (
            kind,
            fn,
            instr.rd,
            instr.ra,
            instr.rb,
            imm,
            rimm,
            instr.target_index,
            instr.spec.mem_size,
        )

    @staticmethod
    def _decode_columnar(index, instr):
        """Static column values: everything but addr/taken/next_pc/sp."""
        dst = instr.destination_register()
        srcs = instr.source_registers()
        is_mem = instr.is_mem
        flags = 0
        if instr.is_load:
            flags |= FLAG_LOAD
        if instr.is_store:
            flags |= FLAG_STORE
        if instr.is_branch:
            flags |= FLAG_BRANCH
        if instr.is_conditional:
            flags |= FLAG_CONDITIONAL
        if dst == SP:
            flags |= FLAG_SP_UPDATE
        imm = instr.imm if instr.imm is not None else 0
        spimm = imm if dst == SP and instr.op == "lda" and instr.rb == SP else 0
        return (
            TEXT_BASE + 4 * index,
            OPCODE_NUMBERS[instr.op],
            flags,
            instr.spec.mem_size,
            instr.rb if is_mem else -1,
            -1 if dst is None else dst,
            len(srcs),
            srcs[0] if len(srcs) > 0 else 0,
            srcs[1] if len(srcs) > 1 else 0,
            imm,
            spimm,
        )

    @staticmethod
    def _decode_record(index, instr):
        """Static TraceRecord fields for the legacy (object) sink path."""
        dst = instr.destination_register()
        imm = instr.imm if instr.imm is not None else 0
        sp_update = dst == SP
        return (
            TEXT_BASE + 4 * index,
            instr.op,
            instr.op_class,
            instr.source_registers(),
            dst,
            instr.is_load,
            instr.is_store,
            instr.spec.mem_size,
            instr.rb if instr.is_mem else None,
            imm,
            instr.is_branch,
            instr.is_conditional,
            sp_update,
            imm if sp_update and instr.op == "lda" and instr.rb == SP else 0,
        )

    @property
    def pc(self) -> int:
        """Current program counter as a byte address."""
        return TEXT_BASE + 4 * self._pc_index

    def run(
        self,
        max_instructions: Optional[int] = None,
        trace_sink=None,
    ) -> int:
        """Run until ``halt`` or ``max_instructions``.

        ``trace_sink`` is any object with ``append`` (e.g. a list, or a
        streaming analysis); a :class:`ColumnarTrace` sink takes the
        packed fast path.  Returns the number of instructions retired.
        """
        profiler = profiling.active()
        profile_started = perf_counter() if profiler is not None else 0.0
        registers = self.registers
        memory = self.memory
        mem_load = memory.load
        mem_load_signed = memory.load_signed
        mem_store = memory.store
        decoded = self._decoded
        text_base = TEXT_BASE
        count = self.instruction_count
        # Absolute stop count, computed once (not re-derived per step).
        stop = count + max_instructions if max_instructions is not None else None
        pc_index = self._pc_index
        num_instructions = len(decoded)

        columns = trace_sink if isinstance(trace_sink, ColumnarTrace) else None
        superblocks = None
        sb_builds = sb_replays = sb_replayed = 0
        if columns is not None:
            emit = None
            emit_cols = self._emit_cols
            if _superblock._ENABLED:
                superblocks = self._superblocks
                sb_get = superblocks.get
                sb_build = _superblock.build_template
                output_append = self.output.append
                mem_words = memory._words
                # Batch appenders for the 12 static columns, bound once
                # per run call and shared by every template replay.
                sb_emitters = (
                    columns.pc.frombytes,
                    columns.opcode.extend,
                    columns.flags.extend,
                    columns.size.extend,
                    columns.base.frombytes,
                    columns.dst.frombytes,
                    columns.nsrc.extend,
                    columns.src0.extend,
                    columns.src1.extend,
                    columns.disp.frombytes,
                    columns.spimm.frombytes,
                    columns.next_pc.frombytes,
                )
            col_pc = columns.pc.append
            col_opcode = columns.opcode.append
            col_flags = columns.flags.append
            col_size = columns.size.append
            col_base = columns.base.append
            col_dst = columns.dst.append
            col_nsrc = columns.nsrc.append
            col_src0 = columns.src0.append
            col_src1 = columns.src1.append
            col_disp = columns.disp.append
            col_spimm = columns.spimm.append
            col_addr = columns.addr.append
            col_next_pc = columns.next_pc.append
            col_sp = columns.sp.append
        else:
            emit = trace_sink.append if trace_sink is not None else None
            emit_records = self._emit_records

        while not self.halted and (stop is None or count < stop):
            if not 0 <= pc_index < num_instructions:
                raise EmulatorError(
                    f"pc out of range: index {pc_index} "
                    f"(0x{text_base + 4 * pc_index:x})"
                )
            if superblocks is not None:
                template = sb_get(pc_index, False)
                if template is False:
                    template = sb_build(
                        decoded, emit_cols, pc_index, text_base
                    )
                    superblocks[pc_index] = template
                    if template is not None:
                        sb_builds += 1
                if template is not None and (
                    stop is None or count + template.length <= stop
                ):
                    template.replay(
                        registers, mem_words, mem_load, mem_load_signed,
                        mem_store, output_append, columns, sb_emitters,
                    )
                    count += template.length
                    pc_index = template.end_index
                    sb_replays += 1
                    sb_replayed += template.length
                    continue
            (
                kind,
                fn,
                rd,
                ra,
                rb,
                imm,
                rimm,
                target_index,
                mem_size,
            ) = decoded[pc_index]
            next_index = pc_index + 1
            addr = 0
            taken = False

            if kind == 0:  # _K_ALU
                result = fn(
                    registers[ra],
                    registers[rb] if rimm is None else rimm,
                )
                if rd != ZERO:
                    registers[rd] = result
            elif kind == 1:  # _K_LOAD
                addr = (registers[rb] + imm) & _MASK64
                value = (
                    mem_load(addr, 8)
                    if mem_size == 8
                    else mem_load_signed(addr, 4)
                )
                if rd != ZERO:
                    registers[rd] = value
            elif kind == 2:  # _K_LDA
                if rd != ZERO:
                    registers[rd] = (registers[rb] + imm) & _MASK64
            elif kind == 3:  # _K_STORE
                addr = (registers[rb] + imm) & _MASK64
                mem_store(addr, registers[rd], mem_size)
            elif kind == 4:  # _K_CBR
                value = registers[ra]
                if value & _SIGN64:
                    value -= 1 << 64
                taken = fn(value)
                if taken:
                    next_index = target_index
            elif kind == 5:  # _K_BR
                taken = True
                next_index = target_index
            elif kind == 6:  # _K_BSR
                taken = True
                registers[RA] = text_base + 4 * (pc_index + 1)
                next_index = target_index
            elif kind == 7:  # _K_JSR
                taken = True
                destination = registers[rb]
                registers[RA] = text_base + 4 * (pc_index + 1)
                next_index = self._index_of(destination)
            elif kind == 8:  # _K_JMP (ret / jmp)
                taken = True
                destination = registers[rb]
                if destination == self._halt_address:
                    self.halted = True
                    next_index = pc_index
                else:
                    next_index = self._index_of(destination)
            elif kind == 9:  # _K_PRINT
                self.output.append(_signed(registers[ra]))
            elif kind == 10:  # _K_HALT
                self.halted = True
                next_index = pc_index
            # kind == 11 (_K_NOP): nothing to do.

            if columns is not None:
                (
                    pc,
                    opnum,
                    flags,
                    size,
                    base,
                    dst,
                    nsrc,
                    src0,
                    src1,
                    disp,
                    spimm,
                ) = emit_cols[pc_index]
                col_pc(pc)
                col_opcode(opnum)
                col_flags(flags | FLAG_TAKEN if taken else flags)
                col_size(size)
                col_base(base)
                col_dst(dst)
                col_nsrc(nsrc)
                col_src0(src0)
                col_src1(src1)
                col_disp(disp)
                col_spimm(spimm)
                col_addr(addr)
                col_next_pc(text_base + 4 * next_index)
                col_sp(registers[SP])
            elif emit is not None:
                (
                    pc,
                    op,
                    op_class,
                    srcs,
                    dst,
                    is_load,
                    is_store,
                    size,
                    base_reg,
                    disp,
                    is_branch,
                    is_conditional,
                    sp_update,
                    spimm,
                ) = emit_records[pc_index]
                emit(
                    TraceRecord(
                        count,
                        pc,
                        op,
                        op_class,
                        srcs,
                        dst,
                        is_load=is_load,
                        is_store=is_store,
                        addr=addr,
                        size=size,
                        base_reg=base_reg,
                        displacement=disp,
                        is_branch=is_branch,
                        is_conditional=is_conditional,
                        taken=taken,
                        next_pc=text_base + 4 * next_index,
                        sp_value=registers[SP],
                        sp_update=sp_update,
                        sp_update_immediate=spimm,
                    )
                )
            count += 1
            pc_index = next_index

        executed = count - self.instruction_count
        self.instruction_count = count
        self._pc_index = pc_index
        self._superblock_builds += sb_builds
        self._superblock_replays += sb_replays
        self._superblock_replayed += sb_replayed
        if profiler is not None:
            profiler.note(
                "emulate", perf_counter() - profile_started, executed
            )
            if sb_builds:
                profiler.count("superblock_builds", sb_builds)
            if sb_replays:
                profiler.count("superblock_replays", sb_replays)
                profiler.count(
                    "superblock_replayed_instructions", sb_replayed
                )
        return executed

    def _index_of(self, address: int) -> int:
        if address % 4 != 0 or address < TEXT_BASE:
            raise EmulatorError(f"bad jump target 0x{address:x}")
        return (address - TEXT_BASE) // 4

    @staticmethod
    def _alu(op: str, left: int, right: int) -> int:
        """Scalar ALU evaluation by opcode name (kept for tests/tools)."""
        handler = _ALU_HANDLERS.get(op)
        if handler is None:
            raise EmulatorError(f"unimplemented ALU op {op!r}")
        return handler(left, right)


def run_program(
    program: Program,
    max_instructions: Optional[int] = None,
    collect_trace: bool = True,
):
    """Run ``program`` to completion (or the instruction limit).

    Returns ``(machine, trace)`` where ``trace`` is a list of
    :class:`TraceRecord` (empty when ``collect_trace`` is False).
    """
    machine = Machine(program)
    trace: List[TraceRecord] = []
    machine.run(
        max_instructions=max_instructions,
        trace_sink=trace if collect_trace else None,
    )
    return machine, trace
