"""164.gzip — LZ77 sliding-window compression with hash chains.

Models deflate's match finder: a flat, loop-dominated kernel over
global window/hash arrays with almost no call depth.  The paper's
Table 3 shows gzip generating essentially zero stack traffic at any
SVF/stack-cache size — the frame fits trivially — which this program
reproduces.
"""

from __future__ import annotations

from repro.workloads.common import rand_source

_TEMPLATE = """
int window[{window}];
int hash_head[{hash_size}];
int chain_prev[{window}];

int fill_window(int kind) {{
    for (int i = 0; i < {window}; i += 1) {{
        int r = rand31();
        int byte = r & 255;
        if (kind == 1) {{
            byte = (r >> 3) & 31;
        }}
        if (kind == 2) {{
            if ((r & 15) < 11 && i > 4) {{
                byte = window[i - 4];
            }}
        }}
        window[i] = byte;
    }}
    return 0;
}}

int hash3(int position) {{
    int h = window[position] * 31 + window[position + 1];
    h = h * 31 + window[position + 2];
    return h & {hash_mask};
}}

int longest_match(int position, int candidate, int limit) {{
    int length = 0;
    while (length < limit
           && window[position + length] == window[candidate + length]) {{
        length += 1;
    }}
    return length;
}}

int deflate_pass() {{
    for (int i = 0; i < {hash_size}; i += 1) {{
        hash_head[i] = -1;
    }}
    int literals = 0;
    int matches = 0;
    int match_bytes = 0;
    int position = 0;
    while (position + 8 < {window}) {{
        int h = hash3(position);
        int candidate = hash_head[h];
        int best = 0;
        int chain = 0;
        while (candidate >= 0 && chain < {max_chain}) {{
            int limit = {window} - position - 1;
            if (limit > 16) {{
                limit = 16;
            }}
            int length = longest_match(position, candidate, limit);
            if (length > best) {{
                best = length;
            }}
            candidate = chain_prev[candidate];
            chain += 1;
        }}
        chain_prev[position] = hash_head[h];
        hash_head[h] = position;
        if (best >= 3) {{
            matches += 1;
            match_bytes += best;
            position += best;
        }} else {{
            literals += 1;
            position += 1;
        }}
    }}
    return literals * 8 + matches * 20 + match_bytes;
}}

int main() {{
    int checksum = 0;
    for (int pass_id = 0; pass_id < {passes}; pass_id += 1) {{
        fill_window({kind});
        checksum += deflate_pass();
    }}
    print(checksum);
    return 0;
}}
"""


def make_source(
    window: int = 512,
    hash_size: int = 64,
    max_chain: int = 8,
    passes: int = 3,
    kind: int = 0,
    seed: int = 164,
) -> str:
    """Build the gzip workload (``kind``: 0=random, 1=graphic, 2=log)."""
    return rand_source(seed) + _TEMPLATE.format(
        window=window,
        hash_size=hash_size,
        hash_mask=hash_size - 1,
        max_chain=max_chain,
        passes=passes,
        kind=kind,
    )


INPUTS = {
    "graphic": dict(kind=1, seed=164),
    "log": dict(kind=2, seed=41064),
    "program": dict(kind=0, seed=90164),
}
