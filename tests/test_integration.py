"""Integration tests: the paper's qualitative claims, end to end.

These run a representative subset of the suite on short windows and
assert the *shapes* the paper reports — who wins, in which direction,
and by roughly what kind of factor.  The full-scale numbers live in
the benchmark harness (benchmarks/) and EXPERIMENTS.md.
"""

import pytest

from repro.core.traffic import simulate_traffic
from repro.emulator.memory import STACK_BASE
from repro.trace.analysis import AccessDistribution, OffsetLocality, \
    StackDepthProfile
from repro.uarch.config import table2_config
from repro.uarch.pipeline import simulate
from repro.workloads import workload

WINDOW = 40_000
SUITE = ["186.crafty", "176.gcc", "164.gzip", "300.twolf"]


@pytest.fixture(scope="module")
def traces():
    return {
        name: workload(name).trace(max_instructions=WINDOW)
        for name in SUITE
    }


class TestSection2Claims:
    """Stack-reference characterization (paper Section 2)."""

    def test_stack_references_are_majority_of_memory_accesses(self, traces):
        fractions = []
        for trace in traces.values():
            dist = AccessDistribution()
            for record in trace:
                dist.append(record)
            fractions.append(dist.stack_fraction)
        assert sum(fractions) / len(fractions) > 0.5

    def test_sp_relative_is_dominant_access_method(self, traces):
        fractions = []
        for trace in traces.values():
            dist = AccessDistribution()
            for record in trace:
                dist.append(record)
            fractions.append(dist.sp_fraction_of_stack)
        assert sum(fractions) / len(fractions) > 0.6

    def test_stack_depth_bounded_by_1000_units_for_most(self, traces):
        """Paper Figure 2: a 1000-unit (8KB) window covers most apps."""
        within = 0
        for trace in traces.values():
            profile = StackDepthProfile(stack_base=STACK_BASE)
            for record in trace:
                profile.append(record)
            if profile.max_depth <= 1100:
                within += 1
        assert within >= len(traces) - 1

    def test_references_cluster_near_tos(self, traces):
        """Paper Figure 3: >99% of references within 8KB of TOS."""
        for name, trace in traces.items():
            locality = OffsetLocality()
            for record in trace:
                locality.append(record)
            assert locality.fraction_within(8192) > 0.95, name
            assert locality.beyond_tos == 0, name


class TestSection5Performance:
    """Performance claims (paper Section 5)."""

    def test_ideal_morphing_speeds_up_every_benchmark(self, traces):
        """Figure 5 direction: morphing always helps, more when wide."""
        for name, trace in traces.items():
            base = table2_config(16)
            baseline = simulate(trace, base)
            ideal = simulate(trace, base.with_svf(mode="ideal"))
            assert ideal.speedup_over(baseline) > 1.0, name

    def test_svf_beats_stack_cache_on_average(self, traces):
        """Figure 7: SVF (2+2) > stack cache (2+2), ~9% on average."""
        svf_speedups = []
        cache_speedups = []
        base = table2_config(16, dl1_ports=2)
        for trace in traces.values():
            baseline = simulate(trace, base)
            svf = simulate(trace, base.with_svf(mode="svf", ports=2))
            cache = simulate(
                trace, base.with_svf(mode="stack_cache", ports=2)
            )
            svf_speedups.append(svf.speedup_over(baseline))
            cache_speedups.append(cache.speedup_over(baseline))
        assert (
            sum(svf_speedups) / len(svf_speedups)
            > sum(cache_speedups) / len(cache_speedups)
        )

    def test_single_ported_design_gains_most(self, traces):
        """Figure 9: (1+1) over (1+0) is the headline win (~50%)."""
        gains = []
        for trace in traces.values():
            base = table2_config(16, dl1_ports=1)
            baseline = simulate(trace, base)
            svf = simulate(trace, base.with_svf(mode="svf", ports=1))
            gains.append(svf.speedup_over(baseline))
        assert sum(gains) / len(gains) > 1.1

    def test_dual_ported_design_still_gains(self, traces):
        """Figure 9: (2+2) over (2+0) averages ~24% in the paper."""
        gains = []
        for trace in traces.values():
            base = table2_config(16, dl1_ports=2)
            baseline = simulate(trace, base)
            svf = simulate(trace, base.with_svf(mode="svf", ports=2))
            gains.append(svf.speedup_over(baseline))
        assert sum(gains) / len(gains) > 1.0


class TestSection5Traffic:
    """Memory-traffic claims (paper Section 5.3.2/5.3.3)."""

    def test_svf_traffic_orders_of_magnitude_below_stack_cache(self):
        """Table 3's headline: SVF reduces overhead traffic massively."""
        total_svf = 0
        total_cache = 0
        for name in SUITE + ["253.perlbmk", "252.eon"]:
            trace = workload(name).trace(max_instructions=WINDOW)
            result = simulate_traffic(trace, capacity_bytes=2048)
            total_svf += result.svf_qw_in + result.svf_qw_out
            total_cache += (
                result.stack_cache_qw_in + result.stack_cache_qw_out
            )
        assert total_cache > 3 * total_svf

    def test_traffic_vanishes_at_8kb_for_well_sized_workloads(self):
        trace = workload("300.twolf").trace(max_instructions=WINDOW)
        small = simulate_traffic(trace, capacity_bytes=2048)
        large = simulate_traffic(trace, capacity_bytes=8192)
        assert (
            large.svf_qw_in + large.svf_qw_out
            <= small.svf_qw_in + small.svf_qw_out
        )
        assert large.stack_cache_qw_in < small.stack_cache_qw_in

    def test_context_switch_traffic_smaller_for_svf(self):
        """Table 4: SVF writes back 3-20x less per switch."""
        ratios = []
        for name in SUITE:
            trace = workload(name).trace(max_instructions=WINDOW)
            result = simulate_traffic(
                trace, capacity_bytes=8192, context_switch_period=8_000
            )
            if result.stack_cache_switch_bytes_avg > 0:
                ratios.append(
                    result.stack_cache_switch_bytes_avg
                    / max(result.svf_switch_bytes_avg, 1e-9)
                )
        assert ratios and min(ratios) >= 1.0


class TestEonAnomaly:
    """The paper's eon story: squashes hurt, no_squash recovers."""

    def test_no_squash_recovers_eon(self):
        trace = workload("eon").trace(max_instructions=WINDOW)
        base = table2_config(16, dl1_ports=2)
        baseline = simulate(trace, base)
        squashy = simulate(trace, base.with_svf(mode="svf", ports=2))
        clean = simulate(
            trace, base.with_svf(mode="svf", ports=2, no_squash=True)
        )
        assert squashy.svf_squashes > 0
        assert clean.speedup_over(baseline) > squashy.speedup_over(baseline)


class TestPerlbmkAnomaly:
    """Figure 7's anomaly: perlbmk's stack set thrashes an 8KB cache."""

    def test_stack_cache_misses_dominate(self):
        trace = workload("perlbmk").trace(max_instructions=WINDOW)
        result = simulate_traffic(trace, capacity_bytes=8192)
        # Persistent traffic even at the largest size (Table 3 row).
        assert result.stack_cache_qw_in > 100
        assert result.svf_qw_in + result.svf_qw_out < (
            result.stack_cache_qw_in + result.stack_cache_qw_out
        )
