"""Budgeted performance smoke for the columnar hot loops.

Not a benchmark — a regression tripwire.  The budgets are ~10× the
wall times measured on the slowest supported host (one CPU core, no
turbo), so they only fire when a hot loop falls off the packed path
entirely (e.g. someone reintroduces per-record object construction in
``Machine.run`` or the timing consume loop).  Real measurements live
in ``benchmarks/measure_core.py`` / ``benchmarks/results/``.
"""

from time import perf_counter

import pytest

from repro.core.traffic import simulate_traffic
from repro.emulator.superblock import set_superblock_enabled
from repro.trace.columnar import _np as _numpy
from repro.emulator.memory import STACK_BASE
from repro.profiling import profiled
from repro.trace.analysis import (
    AccessDistribution,
    OffsetLocality,
    StackDepthProfile,
    consume_trace,
)
from repro.trace.columnar import set_numpy_enabled
from repro.trace.first_touch import FirstTouchProfile
from repro.uarch.config import table2_config
from repro.uarch.pipeline import simulate, simulate_batch
from repro.workloads import workload

#: generous wall-clock ceilings (seconds); measured cold ~0.2s total.
EMULATE_BUDGET = 3.0
TIMING_BUDGET = 6.0
END_TO_END_BUDGET = 10.0
ANALYSIS_BUDGET = 3.0
TRAFFIC_BUDGET = 3.0
WINDOW = 40_000


@pytest.mark.perf
def test_cold_single_workload_end_to_end_budget():
    with profiled() as profiler:
        started = perf_counter()
        work = workload("gzip")
        trace = work.trace(max_instructions=WINDOW)
        base = table2_config(16)
        baseline = simulate(trace, base)
        svf = simulate(trace, base.with_svf(mode="svf", ports=2))
        elapsed = perf_counter() - started
    assert len(trace) == WINDOW
    assert svf.speedup_over(baseline) > 0
    assert elapsed < END_TO_END_BUDGET, profiler.render()
    phases = profiler.phases
    assert phases["emulate"].seconds < EMULATE_BUDGET, profiler.render()
    assert phases["timing"].seconds < TIMING_BUDGET, profiler.render()


@pytest.mark.perf
def test_batched_analysis_budget():
    # The Fig 1-3 characterization pass over 40k packed records stays
    # well under a second even on the pure-python column walk; the
    # budget fires only if someone reroutes it through per-record
    # TraceRecord construction again.  numpy is deliberately disabled
    # so the tripwire guards the reference path every host exercises.
    trace = workload("gzip").trace(max_instructions=WINDOW)
    sinks = (
        AccessDistribution(),
        StackDepthProfile(stack_base=STACK_BASE),
        OffsetLocality(),
        FirstTouchProfile(),
    )
    previous = set_numpy_enabled(False)
    try:
        with profiled() as profiler:
            consume_trace(trace, sinks)
    finally:
        set_numpy_enabled(previous)
    stat = profiler.phases["analysis"]
    assert stat.items == WINDOW
    assert stat.seconds < ANALYSIS_BUDGET, profiler.render()


@pytest.mark.perf
def test_batched_traffic_budget():
    # Same tripwire for the Table 3 consumer's columnar walk.
    trace = workload("gzip").trace(max_instructions=WINDOW)
    previous = set_numpy_enabled(False)
    try:
        with profiled() as profiler:
            simulate_traffic(trace)
    finally:
        set_numpy_enabled(previous)
    stat = profiler.phases["traffic"]
    assert stat.items == WINDOW
    assert stat.seconds < TRAFFIC_BUDGET, profiler.render()


@pytest.mark.perf
def test_superblock_replay_budget_and_hit_rate():
    # The loop-heavy LZ77 kernel replays most of its retirement from
    # superblock templates (~82% measured); the floor fires when a
    # change stops templates from forming or from being reused.  The
    # wall budget is the usual ~10× slack tripwire.
    with profiled() as profiler:
        workload("gzip").trace(max_instructions=WINDOW)
    counters = profiler.counters
    assert counters["superblock_builds"] > 0
    assert counters["superblock_replays"] > 0
    replayed = counters["superblock_replayed_instructions"]
    assert replayed / WINDOW > 0.5, profiler.render()
    assert profiler.phases["emulate"].seconds < EMULATE_BUDGET, (
        profiler.render()
    )


@pytest.mark.perf
def test_step_decode_reference_budget():
    # The step-decode walk stays the reference implementation; it must
    # remain usable (differential gates run it on every workload).
    previous = set_superblock_enabled(False)
    try:
        with profiled() as profiler:
            workload("gzip").trace(max_instructions=WINDOW)
    finally:
        set_superblock_enabled(previous)
    assert "superblock_replays" not in profiler.counters
    assert profiler.phases["emulate"].seconds < EMULATE_BUDGET, (
        profiler.render()
    )


@pytest.mark.perf
@pytest.mark.skipif(_numpy is None, reason="numpy unavailable")
def test_vectorized_timing_budget():
    # The numpy-assisted walk must beat the generous reference budget
    # with lots of headroom; this fires if simulate() stops
    # dispatching to the vectorized walk when numpy is enabled.
    trace = workload("gzip").trace(max_instructions=WINDOW)
    base = table2_config(16)
    previous = set_numpy_enabled(True)
    try:
        with profiled() as profiler:
            simulate(trace, base)
            simulate(trace, base.with_svf(mode="svf", ports=2))
    finally:
        set_numpy_enabled(previous)
    stat = profiler.phases["timing"]
    assert stat.items == 2 * WINDOW
    assert stat.seconds < TIMING_BUDGET / 2, profiler.render()


@pytest.mark.perf
def test_batched_timing_budget():
    # One batched pass over four configs must fit the budget two
    # sequential walks get: the batch shares the trace walk and the
    # config-invariant precompute instead of multiplying them.  Fires
    # if simulate_batch silently degrades to a per-config loop.
    trace = workload("gzip").trace(max_instructions=WINDOW)
    base = table2_config(16)
    configs = [base] + [
        base.with_svf(mode="svf", ports=ports) for ports in (1, 2, 16)
    ]
    with profiled() as profiler:
        stats = simulate_batch(trace, configs)
    assert len(stats) == len(configs)
    assert profiler.counters["batch_walks_saved"] == len(configs) - 1
    assert profiler.phases["timing"].seconds < TIMING_BUDGET, (
        profiler.render()
    )


@pytest.mark.perf
def test_emulator_throughput_floor():
    # The packed emit path sustains well over 1 MIPS on any host this
    # repo supports; the floor is set 10× below the measured rate.
    with profiled() as profiler:
        workload("crafty").trace(max_instructions=WINDOW)
    stat = profiler.phases["emulate"]
    assert stat.items == WINDOW
    assert stat.mips > 0.1, profiler.render()
