"""Differential gate for the columnar trace IR.

The columnar fast path in ``Machine.run`` packs retired instructions
straight into :class:`ColumnarTrace` columns, bypassing
``TraceRecord`` construction entirely.  These tests prove the two
paths are observationally identical: every registry workload and a
corpus of hypothesis-fuzzed programs run twice — once into a plain
``list`` sink (the legacy record-object path) and once into a
``ColumnarTrace`` sink (the packed path) — and every field of every
record must match, position by position.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.emulator import Machine
from repro.isa import assemble
from repro.trace.columnar import ColumnarTrace, record_fields
from repro.trace.records import TraceRecord
from repro.workloads import ALL_BENCHMARKS, workload

#: registers the fuzz uses (caller-saved temps, away from $sp/$ra)
REGS = ["r1", "r2", "r3", "r4", "r5"]

ALU_OPS = ["addq", "subq", "mulq", "and", "or", "xor",
           "sll", "srl", "cmpeq", "cmplt"]


def assert_traces_identical(columnar, legacy):
    """Field-by-field comparison of a columnar trace vs a record list."""
    assert isinstance(columnar, ColumnarTrace)
    assert all(isinstance(r, TraceRecord) for r in legacy)
    assert len(columnar) == len(legacy)
    for got, want in zip(columnar, legacy):
        assert record_fields(got) == record_fields(want)
        # op_class must be the shared singleton, not a reconstruction.
        assert got.op_class is want.op_class


def run_both_ways(program, max_instructions=None):
    legacy = []
    Machine(program).run(
        max_instructions=max_instructions, trace_sink=legacy
    )
    columnar = ColumnarTrace()
    Machine(program).run(
        max_instructions=max_instructions, trace_sink=columnar
    )
    return columnar, legacy


class TestWorkloadDifferential:
    """The gate the issue demands: columnar == legacy on every workload."""

    # (param is named ``bench``: pytest-benchmark owns ``benchmark``.)
    @pytest.mark.parametrize("bench", ALL_BENCHMARKS)
    def test_columnar_matches_legacy(self, bench):
        program = workload(bench).program()
        columnar, legacy = run_both_ways(program, max_instructions=2_000)
        assert len(legacy) > 0
        assert_traces_identical(columnar, legacy)

    def test_full_run_including_halt(self):
        # No window: the trace covers the halt path too.
        program = workload("mcf").program()
        columnar, legacy = run_both_ways(program)
        assert_traces_identical(columnar, legacy)


# --- fuzzed programs: ALU ops, stack memory traffic, $sp updates, ----
# --- and forward conditional branches (always terminating). ----------

_alu = st.one_of(
    st.tuples(st.just("alu"), st.sampled_from(ALU_OPS),
              st.sampled_from(REGS), st.sampled_from(REGS),
              st.sampled_from(REGS)),
    st.tuples(st.just("alui"), st.sampled_from(ALU_OPS),
              st.sampled_from(REGS), st.integers(-200, 200),
              st.sampled_from(REGS)),
)
_memory = st.one_of(
    st.tuples(st.just("store"), st.sampled_from(REGS),
              st.integers(0, 15)),
    st.tuples(st.just("load"), st.sampled_from(REGS),
              st.integers(0, 15)),
)
_branch = st.tuples(st.just("branch"), st.sampled_from(["beq", "bne"]),
                    st.sampled_from(REGS))
_sp_adjust = st.tuples(st.just("sp"), st.sampled_from([-32, -16, 16, 32]))

_step = st.one_of(_alu, _memory, _branch, _sp_adjust)


def _fuzz_source(steps):
    # Reserve a frame so loads/stores and $sp wiggles stay in bounds.
    lines = ["main:", "    lda sp, -512(sp)"]
    for i, item in enumerate(steps):
        kind = item[0]
        if kind == "alu":
            _, op, ra, rb, rd = item
            lines.append(f"    {op} {ra}, {rb}, {rd}")
        elif kind == "alui":
            _, op, ra, imm, rd = item
            lines.append(f"    {op} {ra}, {imm}, {rd}")
        elif kind == "store":
            _, reg, slot = item
            lines.append(f"    stq {reg}, {8 * slot}(sp)")
        elif kind == "load":
            _, reg, slot = item
            lines.append(f"    ldq {reg}, {8 * slot}(sp)")
        elif kind == "branch":
            # Forward branch over one filler instruction: exercises
            # taken and not-taken conditional records, terminates.
            _, op, reg = item
            lines.append(f"    {op} {reg}, skip_{i}")
            lines.append("    addq r1, 1, r1")
            lines.append(f"skip_{i}:")
        else:  # sp wiggle inside the reserved frame
            _, imm = item
            lines.append(f"    lda sp, {imm}(sp)")
            lines.append(f"    lda sp, {-imm}(sp)")
    lines.append("    lda sp, 512(sp)")
    lines.append("    halt")
    return "\n".join(lines)


class TestFuzzedDifferential:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_step, min_size=1, max_size=30))
    def test_columnar_matches_legacy(self, steps):
        program = assemble(_fuzz_source(steps))
        columnar, legacy = run_both_ways(program)
        assert len(legacy) > 0
        assert_traces_identical(columnar, legacy)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(_step, min_size=5, max_size=30),
           st.integers(1, 20))
    def test_truncated_window_matches(self, steps, window):
        program = assemble(_fuzz_source(steps))
        columnar, legacy = run_both_ways(program, max_instructions=window)
        assert_traces_identical(columnar, legacy)


class TestColumnarContainer:
    """Sequence/sink protocol details legacy consumers rely on."""

    @pytest.fixture(scope="class")
    def trace(self):
        return workload("gzip").trace(max_instructions=1_000)

    def test_len_iter_getitem_agree(self, trace):
        assert len(trace) == 1_000
        records = list(trace)
        assert len(records) == 1_000
        assert record_fields(trace[0]) == record_fields(records[0])
        assert record_fields(trace[-1]) == record_fields(records[-1])

    def test_getitem_out_of_range(self, trace):
        with pytest.raises(IndexError):
            trace[1_000]
        with pytest.raises(IndexError):
            trace[-1_001]

    def test_slice_returns_columnar(self, trace):
        head = trace[:100]
        assert isinstance(head, ColumnarTrace)
        assert len(head) == 100
        for i in range(100):
            assert record_fields(head[i]) == record_fields(trace[i])

    def test_record_index_is_position(self, trace):
        # Slices re-index from zero: index is positional, not global.
        tail = trace[900:]
        assert tail[0].index == 0
        assert trace[900].index == 900
        assert record_fields(tail[0])[1:] == record_fields(trace[900])[1:]

    def test_from_records_passthrough_and_pack(self, trace):
        assert ColumnarTrace.from_records(trace) is trace
        packed = ColumnarTrace.from_records(list(trace))
        assert packed == trace

    def test_eq_against_record_list(self, trace):
        records = list(trace)
        assert trace == records
        records[3] = records[4]
        assert not (trace[:10] == records[:10])

    def test_empty_trace(self):
        empty = ColumnarTrace()
        assert len(empty) == 0
        assert list(empty) == []
        assert empty == []
