"""254.gap — computational group theory (permutation arithmetic).

Models GAP's workload shape: heap-allocated permutation vectors that
are repeatedly composed, inverted and tested for orbits.  Heavy heap
traffic with a moderate call structure, so stack traffic comes mostly
from argument spills and loop locals.
"""

from __future__ import annotations

from repro.workloads.common import rand_source

_TEMPLATE = """
int orbit_sizes[{degree}];

int make_random_perm(int degree) {{
    int *perm = alloc(degree);
    for (int i = 0; i < degree; i += 1) {{
        perm[i] = i;
    }}
    for (int i = degree - 1; i > 0; i -= 1) {{
        int j = rand31() % (i + 1);
        int tmp = perm[i];
        perm[i] = perm[j];
        perm[j] = tmp;
    }}
    return perm;
}}

int compose(int *result, int *left, int *right, int degree) {{
    for (int i = 0; i < degree; i += 1) {{
        result[i] = left[right[i]];
    }}
    return 0;
}}

int invert(int *result, int *perm, int degree) {{
    for (int i = 0; i < degree; i += 1) {{
        result[perm[i]] = i;
    }}
    return 0;
}}

int orbit_size(int *perm, int start, int degree) {{
    int size = 1;
    int position = perm[start];
    while (position != start) {{
        position = perm[position];
        size += 1;
    }}
    return size;
}}

int order_estimate(int *perm, int degree) {{
    int seen[{degree}];
    for (int i = 0; i < degree; i += 1) {{
        seen[i] = 0;
    }}
    int lcm_estimate = 1;
    for (int i = 0; i < degree; i += 1) {{
        if (seen[i] != 0) {{
            continue;
        }}
        seen[i] = 1;
        int size = orbit_size(perm, i, degree);
        orbit_sizes[i] = size;
        int walker = perm[i];
        while (walker != i) {{
            seen[walker] = 1;
            walker = perm[walker];
        }}
        if (lcm_estimate % size != 0) {{
            lcm_estimate = lcm_estimate * size;
            if (lcm_estimate > 1000000000) {{
                lcm_estimate = lcm_estimate % 1000000007;
            }}
        }}
    }}
    return lcm_estimate;
}}

int main() {{
    int degree = {degree};
    int *generator_a = make_random_perm(degree);
    int *generator_b = make_random_perm(degree);
    int *work = alloc(degree);
    int *inverse = alloc(degree);
    int *scratch = alloc(degree);
    int checksum = 0;
    for (int round = 0; round < {rounds}; round += 1) {{
        compose(work, generator_a, generator_b, degree);
        invert(inverse, work, degree);
        compose(generator_a, work, inverse, degree);
        checksum += order_estimate(generator_a, degree);
        // Compose into a scratch buffer: composing in place would
        // read partially overwritten values and corrupt the
        // permutation.
        compose(scratch, generator_b, work, degree);
        for (int i = 0; i < degree; i += 1) {{
            generator_b[i] = scratch[i];
        }}
    }}
    print(checksum);
    return 0;
}}
"""


def make_source(degree: int = 48, rounds: int = 22, seed: int = 254) -> str:
    """Build the gap workload."""
    return rand_source(seed) + _TEMPLATE.format(degree=degree, rounds=rounds)


INPUTS = {"ref": dict(seed=254)}
