"""Dynamic-trace records, region classification and analyses."""

from repro.trace.analysis import (
    AccessDistribution,
    MultiSink,
    OffsetLocality,
    StackDepthProfile,
    consume_trace,
)
from repro.trace.columnar import (
    ColumnarTrace,
    numpy_available,
    numpy_enabled,
    set_numpy_enabled,
)
from repro.trace.records import TraceRecord
from repro.trace.serialization import (
    TraceFormatError,
    TraceWriter,
    load_trace,
    save_trace,
    write_trace,
)
from repro.trace.regions import (
    AccessMethod,
    Region,
    STACK_REGION_FLOOR,
    classify_access,
    classify_address,
    is_stack_address,
)

__all__ = [
    "AccessDistribution",
    "AccessMethod",
    "ColumnarTrace",
    "MultiSink",
    "OffsetLocality",
    "Region",
    "STACK_REGION_FLOOR",
    "StackDepthProfile",
    "TraceFormatError",
    "TraceRecord",
    "TraceWriter",
    "classify_access",
    "classify_address",
    "consume_trace",
    "is_stack_address",
    "load_trace",
    "numpy_available",
    "numpy_enabled",
    "save_trace",
    "set_numpy_enabled",
    "write_trace",
]
