"""A small generic dataflow framework over :class:`FunctionCFG`.

Every stack-discipline pass in :mod:`repro.analysis.stackcheck` is an
instance of the same fixpoint computation: propagate abstract facts
along control-flow edges, merging at joins, until nothing changes.
This module provides that computation once, in both directions, so a
pass only supplies its lattice (``top``/``boundary``/``meet``) and its
block transfer function.

The solver is a classic worklist algorithm seeded in reverse
post-order (post-order for backward problems), which reaches the
fixpoint in a handful of sweeps for the reducible CFGs the MiniC
compiler emits.  Facts are compared with ``==``; transfer functions
must therefore return values with structural equality (frozensets,
tuples, ints, dataclasses with ``eq=True``...), never mutate their
input, and be monotone with respect to ``meet``.

Unreachable blocks keep the ``top`` fact, which every sensible lattice
treats as "no information"; reporting walks should skip them (see
:meth:`FunctionCFG.reachable_ids`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Generic, List, TypeVar

from repro.analysis.cfg import BasicBlock, FunctionCFG

Fact = TypeVar("Fact")

FORWARD = "forward"
BACKWARD = "backward"


class DataflowProblem(Generic[Fact]):
    """One dataflow analysis: lattice plus transfer function.

    Subclasses define:

    * :attr:`direction` — ``FORWARD`` or ``BACKWARD``;
    * :meth:`boundary` — the fact at the function entry (forward) or
      at every exit (backward);
    * :meth:`top` — the optimistic initial fact for unvisited blocks;
    * :meth:`meet` — the confluence operator;
    * :meth:`transfer` — the effect of one whole basic block.
    """

    direction: str = FORWARD

    def boundary(self, cfg: FunctionCFG) -> Fact:
        raise NotImplementedError

    def top(self, cfg: FunctionCFG) -> Fact:
        raise NotImplementedError

    def meet(self, left: Fact, right: Fact) -> Fact:
        raise NotImplementedError

    def transfer(self, cfg: FunctionCFG, block: BasicBlock, fact: Fact) -> Fact:
        raise NotImplementedError


@dataclass
class DataflowResult(Generic[Fact]):
    """Per-block input/output facts at the fixpoint.

    ``inputs[b]`` is the fact *entering* block ``b`` in the problem's
    direction of travel: for a backward problem it is the fact at the
    block's end (its live-out, say) and ``outputs[b]`` the fact at its
    start.
    """

    inputs: Dict[int, Fact]
    outputs: Dict[int, Fact]
    iterations: int


def solve(cfg: FunctionCFG, problem: DataflowProblem[Fact]) -> DataflowResult[Fact]:
    """Run ``problem`` over ``cfg`` to its (unique) fixpoint."""
    forward = problem.direction == FORWARD
    order = cfg.reverse_postorder()
    if not forward:
        order = list(reversed(order))

    def edges_in(block: BasicBlock) -> List[int]:
        return block.predecessors if forward else block.successors

    boundary_ids = (
        {cfg.entry.id}
        if forward
        else {block.id for block in cfg.exit_blocks()} or {cfg.entry.id}
    )

    inputs: Dict[int, Fact] = {}
    outputs: Dict[int, Fact] = {}
    for block in cfg.blocks:
        inputs[block.id] = problem.top(cfg)
        outputs[block.id] = problem.top(cfg)

    in_worklist = {block.id for block in order}
    worklist = [block.id for block in order]
    iterations = 0
    position = 0
    while position < len(worklist):
        block_id = worklist[position]
        position += 1
        if block_id not in in_worklist:
            continue
        in_worklist.discard(block_id)
        iterations += 1
        block = cfg.blocks[block_id]

        fact = problem.boundary(cfg) if block_id in boundary_ids else None
        for source in edges_in(block):
            incoming = outputs[source]
            fact = incoming if fact is None else problem.meet(fact, incoming)
        if fact is None:
            fact = problem.top(cfg)
        inputs[block_id] = fact

        new_output = problem.transfer(cfg, block, fact)
        if new_output != outputs[block_id]:
            outputs[block_id] = new_output
            targets = block.successors if forward else block.predecessors
            for target in targets:
                if target not in in_worklist:
                    in_worklist.add(target)
                    worklist.append(target)
    return DataflowResult(inputs=inputs, outputs=outputs, iterations=iterations)


# ---------------------------------------------------------------------------
# A ready-made set lattice: the common case for gen/kill style passes.
# ---------------------------------------------------------------------------

#: Sentinel for the universal set in must-problems (meet = intersection):
#: the top fact of an unvisited block must absorb under intersection.
UNIVERSE = None


class SetProblem(DataflowProblem[FrozenSet]):
    """Gen/kill analysis over frozensets.

    ``may=True`` gives a union meet starting from the empty set (e.g.
    liveness, may-taint); ``may=False`` gives an intersection meet
    starting from the universal set (e.g. definitely-written slots),
    with :data:`UNIVERSE` (``None``) standing in for "everything".
    """

    may: bool = True

    def boundary(self, cfg: FunctionCFG) -> FrozenSet:
        return frozenset()

    def top(self, cfg: FunctionCFG):
        return frozenset() if self.may else UNIVERSE

    def meet(self, left, right):
        if self.may:
            return left | right
        if left is UNIVERSE:
            return right
        if right is UNIVERSE:
            return left
        return left & right

    def transfer(self, cfg, block, fact):
        if fact is UNIVERSE:
            fact = frozenset()
        indices = block.indices()
        if self.direction == BACKWARD:
            indices = reversed(indices)
        value = set(fact)
        for index in indices:
            self.step(cfg, index, value)
        return frozenset(value)

    def step(self, cfg: FunctionCFG, index: int, value: set) -> None:
        """Apply one instruction's gen/kill to ``value`` in place."""
        raise NotImplementedError


def instruction_facts(
    cfg: FunctionCFG,
    block: BasicBlock,
    entry_fact: Fact,
    step: Callable[[int, Fact], Fact],
    backward: bool = False,
) -> Dict[int, Fact]:
    """Replay a block's transfer to recover per-instruction facts.

    Solvers only keep block-boundary facts; reporting walks need the
    fact *at each instruction* (the fact holding just before it in the
    direction of travel).  Given the block's entry fact and the
    per-instruction ``step`` function, returns ``{index: fact}``.
    """
    facts: Dict[int, Fact] = {}
    indices = list(block.indices())
    if backward:
        indices = list(reversed(indices))
    fact = entry_fact
    for index in indices:
        facts[index] = fact
        fact = step(index, fact)
    return facts
