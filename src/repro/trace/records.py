"""Dynamic-instruction trace records.

The functional emulator emits one :class:`TraceRecord` per retired
instruction.  A record carries everything the downstream consumers need:

* the timing model (``repro.uarch``) uses the register source/dest sets,
  op class, memory address and branch outcome;
* the trace analyses (Figures 1-3) use the base register, memory
  address and the ``$sp`` value at retirement;
* the SVF/stack-cache traffic models (Table 3/4) use addresses, sizes
  and the ``sp_update`` markers.

Records use ``__slots__``: a run produces 10^5-10^6 of them.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.instructions import OpClass


class TraceRecord:
    """One dynamically executed instruction."""

    __slots__ = (
        "index",
        "pc",
        "op",
        "op_class",
        "srcs",
        "dst",
        "is_load",
        "is_store",
        "addr",
        "size",
        "base_reg",
        "displacement",
        "is_branch",
        "is_conditional",
        "taken",
        "next_pc",
        "sp_value",
        "sp_update",
        "sp_update_immediate",
    )

    def __init__(
        self,
        index: int,
        pc: int,
        op: str,
        op_class: OpClass,
        srcs: Tuple[int, ...],
        dst: Optional[int],
        is_load: bool = False,
        is_store: bool = False,
        addr: int = 0,
        size: int = 0,
        base_reg: Optional[int] = None,
        displacement: int = 0,
        is_branch: bool = False,
        is_conditional: bool = False,
        taken: bool = False,
        next_pc: int = 0,
        sp_value: int = 0,
        sp_update: bool = False,
        sp_update_immediate: int = 0,
    ):
        self.index = index
        self.pc = pc
        self.op = op
        self.op_class = op_class
        self.srcs = srcs
        self.dst = dst
        self.is_load = is_load
        self.is_store = is_store
        self.addr = addr
        self.size = size
        self.base_reg = base_reg
        self.displacement = displacement
        self.is_branch = is_branch
        self.is_conditional = is_conditional
        self.taken = taken
        self.next_pc = next_pc
        self.sp_value = sp_value
        self.sp_update = sp_update
        self.sp_update_immediate = sp_update_immediate

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.is_mem:
            kind = "load" if self.is_load else "store"
            extra = f" {kind} @0x{self.addr:x}"
        if self.is_branch:
            extra += f" taken={self.taken}"
        return f"<TraceRecord #{self.index} {self.op}{extra}>"
