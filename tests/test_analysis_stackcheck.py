"""The five SVF-safety passes on hand-written assembly."""

from repro.analysis import Severity, lint_assembly
from repro.analysis.stackcheck import (
    PASS_BOUNDS,
    PASS_CFG,
    PASS_DEAD_STORE,
    PASS_ESCAPE,
    PASS_FIRST_READ,
    PASS_SP,
)

CLEAN = """
.text
main:
    lda   sp, -32(sp)
    stq   ra, 0(sp)
    stq   a0, 8(sp)
    ldq   t0, 8(sp)
    addq  t0, 1, t0
    stq   t0, 8(sp)
    ldq   t1, 8(sp)
    print t1
    ldq   ra, 0(sp)
    lda   sp, 32(sp)
    ret
"""


def _passes(report, pass_name, severity=None):
    return [
        d for d in report.diagnostics
        if d.pass_name == pass_name
        and (severity is None or d.severity is severity)
    ]


class TestCleanCode:
    def test_no_errors_or_warnings(self):
        report = lint_assembly(CLEAN)
        assert report.ok
        assert report.warnings == []

    def test_dead_stores_absent(self):
        # Every store in CLEAN is observed by a later load.
        report = lint_assembly(CLEAN)
        assert _passes(report, PASS_DEAD_STORE) == []


class TestSpBalance:
    def test_missing_epilogue_restore(self):
        source = """
        .text
        main:
            lda   sp, -32(sp)
            stq   a0, 0(sp)
            ret
        """
        report = lint_assembly(source)
        errors = _passes(report, PASS_SP, Severity.ERROR)
        assert len(errors) == 1
        assert "unbalanced $sp" in errors[0].message
        assert "-32" in errors[0].message

    def test_early_return_path_skips_epilogue(self):
        source = """
        .text
        main:
            lda   sp, -16(sp)
            beq   a0, main$out
            lda   sp, 16(sp)
        main$out:
            ret
        """
        report = lint_assembly(source)
        errors = _passes(report, PASS_SP, Severity.ERROR)
        assert errors, "paths disagreeing on $sp depth must be flagged"
        assert "disagree" in errors[0].message

    def test_sp_written_by_alu(self):
        source = """
        .text
        main:
            addq  zero, 64, sp
            ret
        """
        report = lint_assembly(source)
        errors = _passes(report, PASS_SP, Severity.ERROR)
        assert any("non-$sp-relative" in e.message for e in errors)

    def test_sp_popped_above_entry(self):
        source = """
        .text
        main:
            lda   sp, 16(sp)
            lda   sp, -16(sp)
            ret
        """
        report = lint_assembly(source)
        errors = _passes(report, PASS_SP, Severity.ERROR)
        assert any("above the function entry" in e.message for e in errors)

    def test_balanced_multiple_returns_ok(self):
        source = """
        .text
        main:
            lda   sp, -16(sp)
            beq   a0, main$alt
            lda   sp, 16(sp)
            ret
        main$alt:
            lda   sp, 16(sp)
            ret
        """
        report = lint_assembly(source)
        assert _passes(report, PASS_SP, Severity.ERROR) == []


class TestFrameBounds:
    def test_overrun_into_caller(self):
        source = """
        .text
        main:
            lda   sp, -16(sp)
            stq   a0, 16(sp)
            lda   sp, 16(sp)
            ret
        """
        report = lint_assembly(source)
        errors = _passes(report, PASS_BOUNDS, Severity.ERROR)
        assert any("caller's frame" in e.message for e in errors)

    def test_partial_overrun_at_frame_edge(self):
        source = """
        .text
        main:
            lda   sp, -16(sp)
            stq   a0, 12(sp)
            lda   sp, 16(sp)
            ret
        """
        report = lint_assembly(source)
        errors = _passes(report, PASS_BOUNDS, Severity.ERROR)
        assert errors, "an 8-byte store 4 bytes from the top must overrun"

    def test_access_below_sp(self):
        source = """
        .text
        main:
            lda   sp, -16(sp)
            stq   a0, -8(sp)
            lda   sp, 16(sp)
            ret
        """
        report = lint_assembly(source)
        errors = _passes(report, PASS_BOUNDS, Severity.ERROR)
        assert any("below $sp" in e.message for e in errors)

    def test_access_with_no_frame(self):
        source = """
        .text
        main:
            stq   a0, 0(sp)
            ret
        """
        report = lint_assembly(source)
        errors = _passes(report, PASS_BOUNDS, Severity.ERROR)
        assert any("no allocated frame" in e.message for e in errors)

    def test_fp_relative_access_checked(self):
        source = """
        .text
        main:
            lda   sp, -32(sp)
            lda   fp, 0(sp)
            stq   a0, 40(fp)
            lda   sp, 32(sp)
            ret
        """
        report = lint_assembly(source)
        errors = _passes(report, PASS_BOUNDS, Severity.ERROR)
        assert errors, "$fp aliases $sp, so 40($fp) overruns the frame"

    def test_word_sized_access_at_edge_ok(self):
        source = """
        .text
        main:
            lda   sp, -16(sp)
            stl   a0, 12(sp)
            ldl   t0, 12(sp)
            print t0
            lda   sp, 16(sp)
            ret
        """
        report = lint_assembly(source)
        assert _passes(report, PASS_BOUNDS, Severity.ERROR) == []


class TestFirstRead:
    def test_read_before_any_write(self):
        source = """
        .text
        main:
            lda   sp, -16(sp)
            ldq   t0, 8(sp)
            print t0
            lda   sp, 16(sp)
            ret
        """
        report = lint_assembly(source)
        warnings = _passes(report, PASS_FIRST_READ, Severity.WARNING)
        assert len(warnings) == 1
        assert "read before any write" in warnings[0].message

    def test_write_on_only_one_path(self):
        source = """
        .text
        main:
            lda   sp, -16(sp)
            beq   a0, main$skip
            stq   a0, 8(sp)
        main$skip:
            ldq   t0, 8(sp)
            print t0
            lda   sp, 16(sp)
            ret
        """
        report = lint_assembly(source)
        assert _passes(report, PASS_FIRST_READ, Severity.WARNING)

    def test_write_on_both_paths_ok(self):
        source = """
        .text
        main:
            lda   sp, -16(sp)
            beq   a0, main$else
            stq   a0, 8(sp)
            br    main$join
        main$else:
            stq   zero, 8(sp)
        main$join:
            ldq   t0, 8(sp)
            print t0
            lda   sp, 16(sp)
            ret
        """
        report = lint_assembly(source)
        assert _passes(report, PASS_FIRST_READ) == []

    def test_partial_word_write_does_not_cover_quad_read(self):
        source = """
        .text
        main:
            lda   sp, -16(sp)
            stl   a0, 8(sp)
            ldq   t0, 8(sp)
            print t0
            lda   sp, 16(sp)
            ret
        """
        report = lint_assembly(source)
        assert _passes(report, PASS_FIRST_READ, Severity.WARNING)


class TestDeadStore:
    def test_store_never_read(self):
        source = """
        .text
        main:
            lda   sp, -16(sp)
            stq   a0, 8(sp)
            lda   sp, 16(sp)
            ret
        """
        report = lint_assembly(source)
        infos = _passes(report, PASS_DEAD_STORE, Severity.INFO)
        assert len(infos) == 1
        assert "never read before frame death" in infos[0].message

    def test_overwritten_store_is_dead(self):
        source = """
        .text
        main:
            lda   sp, -16(sp)
            stq   a0, 8(sp)
            stq   a1, 8(sp)
            ldq   t0, 8(sp)
            print t0
            lda   sp, 16(sp)
            ret
        """
        report = lint_assembly(source)
        infos = _passes(report, PASS_DEAD_STORE, Severity.INFO)
        assert len(infos) == 1
        assert infos[0].index == 1  # the first store, not the second

    def test_read_on_one_path_keeps_store(self):
        source = """
        .text
        main:
            lda   sp, -16(sp)
            stq   a0, 8(sp)
            beq   a0, main$skip
            ldq   t0, 8(sp)
            print t0
        main$skip:
            lda   sp, 16(sp)
            ret
        """
        report = lint_assembly(source)
        assert _passes(report, PASS_DEAD_STORE) == []

    def test_address_taken_suppresses_report(self):
        # Once a slot's address escapes, a computed access could read
        # it, so the pass must stay quiet (conservative).
        source = """
        .text
        main:
            lda   sp, -16(sp)
            lda   t1, 8(sp)
            stq   a0, 8(sp)
            ldq   t2, 0(t1)
            print t2
            lda   sp, 16(sp)
            ret
        """
        report = lint_assembly(source)
        assert _passes(report, PASS_DEAD_STORE) == []


class TestEscape:
    def test_computed_base_access_is_gpr_class(self):
        source = """
        .text
        main:
            lda   sp, -32(sp)
            lda   t0, 8(sp)
            addq  t0, 8, t0
            stq   a0, 0(t0)
            lda   sp, 32(sp)
            ret
        """
        report = lint_assembly(source)
        infos = _passes(report, PASS_ESCAPE, Severity.INFO)
        assert any("$gpr" in d.message for d in infos)

    def test_stack_address_stored_to_global(self):
        source = """
        .data
        cell: .quad 0
        .text
        main:
            lda   sp, -16(sp)
            lda   t0, 8(sp)
            lda   t1, cell
            stq   t0, 0(t1)
            lda   sp, 16(sp)
            ret
        """
        report = lint_assembly(source)
        warnings = _passes(report, PASS_ESCAPE, Severity.WARNING)
        assert any("non-stack memory" in d.message for d in warnings)

    def test_stack_address_passed_to_callee(self):
        source = """
        .text
        main:
            lda   sp, -16(sp)
            stq   ra, 0(sp)
            lda   a0, 8(sp)
            bsr   helper
            ldq   ra, 0(sp)
            lda   sp, 16(sp)
            ret
        helper:
            ldq   v0, 0(a0)
            ret
        """
        report = lint_assembly(source)
        infos = _passes(report, PASS_ESCAPE, Severity.INFO)
        assert any("passed to callee" in d.message for d in infos)

    def test_spilled_address_keeps_taint_through_reload(self):
        source = """
        .text
        main:
            lda   sp, -32(sp)
            lda   t0, 8(sp)
            stq   t0, 16(sp)
            ldq   t1, 16(sp)
            ldq   t2, 0(t1)
            print t2
            lda   sp, 32(sp)
            ret
        """
        report = lint_assembly(source)
        infos = _passes(report, PASS_ESCAPE, Severity.INFO)
        assert any("computed base" in d.message for d in infos), (
            "the reload of a spilled stack address must stay tainted"
        )

    def test_comparison_drops_taint(self):
        source = """
        .text
        main:
            lda   sp, -16(sp)
            lda   t0, 8(sp)
            cmplt t0, 100, t1
            stq   t1, 8(sp)
            ldq   t2, 8(sp)
            print t2
            lda   sp, 16(sp)
            ret
        """
        report = lint_assembly(source)
        assert _passes(report, PASS_ESCAPE, Severity.WARNING) == []

    def test_call_clobbers_temp_taint(self):
        source = """
        .text
        main:
            lda   sp, -16(sp)
            stq   ra, 0(sp)
            lda   t0, 8(sp)
            bsr   helper
            stq   t0, 8(sp)
            ldq   ra, 0(sp)
            lda   sp, 16(sp)
            ret
        helper:
            lda   v0, 1(zero)
            ret
        """
        report = lint_assembly(source)
        # After the call t0 is a clobbered temp: storing it to the
        # frame is not an address spill, so no taint survives into
        # slot 8 and no computed-base/info diagnostics follow.
        infos = _passes(report, PASS_ESCAPE, Severity.INFO)
        assert all("passed to callee" not in d.message for d in infos)


class TestStructure:
    def test_unreachable_code_reported(self):
        source = """
        .text
        main:
            br    main$done
            addq  zero, 1, t0
        main$done:
            ret
        """
        report = lint_assembly(source)
        infos = _passes(report, PASS_CFG, Severity.INFO)
        assert any("unreachable" in d.message for d in infos)

    def test_uncalled_function_reported(self):
        source = """
        .text
        main:
            ret
        orphan:
            lda   sp, -16(sp)
            lda   sp, 16(sp)
            ret
        """
        report = lint_assembly(source)
        infos = _passes(report, PASS_CFG, Severity.INFO)
        assert any("never called" in d.message for d in infos)

    def test_indirect_call_silences_dead_function_pass(self):
        # An indirect call could reach anything, so no function may be
        # declared dead once the call graph is incomplete.
        source = """
        .text
        main:
            jsr   t0
            ret
        orphan:
            ret
        """
        report = lint_assembly(source)
        infos = _passes(report, PASS_CFG, Severity.INFO)
        assert all("never called" not in d.message for d in infos)

    def test_indirect_jump_warns(self):
        source = """
        .text
        main:
            jmp   t0
        """
        report = lint_assembly(source)
        warnings = _passes(report, PASS_CFG, Severity.WARNING)
        assert any("indirect jump" in d.message for d in warnings)
