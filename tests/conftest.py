"""Shared fixtures: small compiled programs and traces.

Session-scoped so the compile/emulate cost is paid once per run.
"""

from __future__ import annotations

import pytest

from repro.emulator import run_program
from repro.lang import compile_program
from repro.workloads import workload

RECURSIVE_SOURCE = """
int depth_reached = 0;

int worker(int n, int *out) {
    int scratch[6];
    scratch[0] = n;
    scratch[1] = n * 3;
    if (n > depth_reached) {
        depth_reached = n;
    }
    if (n <= 0) {
        out[0] = scratch[1];
        return 1;
    }
    int below = worker(n - 1, out);
    return below + scratch[0];
}

int main() {
    int result = 0;
    int total = 0;
    for (int i = 0; i < 6; i += 1) {
        total += worker(5, &result);
    }
    print(total);
    print(result);
    return 0;
}
"""


@pytest.fixture(scope="session")
def recursive_program():
    """A small recursive program exercising sp/fp/gpr stack accesses."""
    return compile_program(RECURSIVE_SOURCE)


@pytest.fixture(scope="session")
def recursive_run(recursive_program):
    """(machine, trace) for the recursive program."""
    return run_program(recursive_program)


@pytest.fixture(scope="session")
def crafty_trace():
    """A 30k-instruction crafty trace (deep call stack)."""
    return workload("crafty").trace(max_instructions=30_000)


@pytest.fixture(scope="session")
def gzip_trace():
    """A 30k-instruction gzip trace (flat, loop-dominated)."""
    return workload("gzip").trace(max_instructions=30_000)


@pytest.fixture(scope="session")
def eon_trace():
    """A 30k-instruction eon trace (gpr-heavy stack accesses)."""
    return workload("eon").trace(max_instructions=30_000)
