"""Unit tests for predictors, caches, resource pools and configs."""

import pytest

from repro.isa.instructions import OpClass
from repro.trace.records import TraceRecord
from repro.uarch.bpred import GSharePredictor, PerfectPredictor, make_predictor
from repro.uarch.cache import Cache, build_hierarchy
from repro.uarch.config import (
    CacheConfig,
    MachineConfig,
    SVFConfig,
    table2_config,
)
from repro.uarch.resources import CyclePool, acquire_all


def branch_record(pc, taken):
    return TraceRecord(
        index=0, pc=pc, op="bne", op_class=OpClass.BRANCH, srcs=(1,),
        dst=None, is_branch=True, is_conditional=True, taken=taken,
    )


class TestPredictors:
    def test_perfect_never_mispredicts(self):
        predictor = PerfectPredictor()
        assert predictor.predict(branch_record(0x1000, True))
        assert predictor.predict(branch_record(0x1000, False))

    def test_gshare_learns_a_bias(self):
        predictor = GSharePredictor()
        record = branch_record(0x1000, True)
        for _ in range(100):
            predictor.predict(record)
        assert predictor.predict(record)  # saturated taken

    def test_gshare_mispredicts_on_flip(self):
        predictor = GSharePredictor(history_bits=4, table_bits=6)
        for _ in range(10):
            predictor.predict(branch_record(0x1000, True))
        misses_before = predictor.mispredictions
        predictor.predict(branch_record(0x1000, False))
        assert predictor.mispredictions == misses_before + 1

    def test_gshare_ignores_unconditional(self):
        predictor = GSharePredictor()
        record = TraceRecord(
            index=0, pc=0x1000, op="br", op_class=OpClass.BRANCH, srcs=(),
            dst=None, is_branch=True, is_conditional=False, taken=True,
        )
        assert predictor.predict(record)
        assert predictor.lookups == 0

    def test_gshare_rate_on_alternating_pattern(self):
        predictor = GSharePredictor()
        for i in range(2000):
            predictor.predict(branch_record(0x1000, i % 2 == 0))
        # Alternation is perfectly history-predictable after warmup.
        assert predictor.misprediction_rate < 0.1

    def test_factory(self):
        assert isinstance(make_predictor("perfect"), PerfectPredictor)
        assert isinstance(make_predictor("gshare"), GSharePredictor)
        with pytest.raises(ValueError):
            make_predictor("tage")


class TestCache:
    def config(self, **kw):
        defaults = dict(size=1024, assoc=2, line_size=32, latency=3)
        defaults.update(kw)
        return CacheConfig(**defaults)

    def test_hit_latency(self):
        cache = Cache(self.config(), memory_latency=60)
        cache.access(0)  # compulsory miss
        assert cache.access(0) == 3
        assert cache.access(24) == 3  # same line

    def test_miss_latency_includes_memory(self):
        cache = Cache(self.config(), memory_latency=60)
        assert cache.access(0) == 63

    def test_hierarchy_latencies(self):
        dl1, l2 = build_hierarchy(
            CacheConfig(size=1024, assoc=2, latency=3),
            CacheConfig(size=8192, assoc=4, latency=16, line_size=64),
            memory_latency=60,
        )
        first = dl1.access(0)
        assert first == 3 + 16 + 60  # DL1 miss, L2 miss, memory
        assert dl1.access(0) == 3  # now resident
        # Evict from DL1 but not L2: conflict in DL1's set.
        way_stride = 1024 // 2
        dl1.access(way_stride)
        dl1.access(2 * way_stride)
        assert dl1.access(0) == 3 + 16  # back from L2

    def test_lru_replacement(self):
        cache = Cache(self.config(assoc=2, size=128, line_size=32),
                      memory_latency=60)
        # Set 0 holds lines 0 and 64 (2 sets of 2 ways, stride 64).
        cache.access(0)
        cache.access(64)
        cache.access(0)  # touch 0: 64 becomes LRU
        cache.access(128)  # evicts 64
        assert cache.probe(0)
        assert not cache.probe(64)

    def test_dirty_writeback_counted(self):
        cache = Cache(self.config(assoc=1, size=64, line_size=32),
                      memory_latency=60)
        cache.access(0, is_write=True)
        cache.access(64, is_write=False)  # evicts dirty line 0
        assert cache.writebacks == 1

    def test_miss_rate(self):
        cache = Cache(self.config(), memory_latency=60)
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == 0.5


class TestCyclePool:
    def test_respects_per_cycle_limit(self):
        pool = CyclePool("issue", 2)
        assert pool.acquire(5) == 5
        assert pool.acquire(5) == 5
        assert pool.acquire(5) == 6

    def test_acquire_all_requires_common_slot(self):
        first = CyclePool("a", 1)
        second = CyclePool("b", 1)
        first.take(3)
        second.take(4)
        assert acquire_all([first, second], 3) == 5

    def test_invalid_pool(self):
        with pytest.raises(ValueError):
            CyclePool("x", 0)


class TestMachineConfig:
    def test_table2_widths(self):
        for width, ruu, lsq, ifq in ((4, 64, 32, 16), (8, 128, 64, 32),
                                     (16, 256, 128, 64)):
            config = table2_config(width)
            assert config.decode_width == width
            assert config.ruu_size == ruu
            assert config.lsq_size == lsq
            assert config.ifq_size == ifq

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            table2_config(32)

    def test_shared_memory_parameters(self):
        config = table2_config(8)
        assert config.dl1.size == 64 * 1024 and config.dl1.assoc == 4
        assert config.l2.size == 512 * 1024
        assert config.dl1.latency == 3
        assert config.store_forward_latency == 3
        assert config.memory_latency == 60

    def test_with_svf_returns_modified_copy(self):
        base = table2_config(16)
        modified = base.with_svf(mode="svf", ports=4)
        assert base.svf.mode == "none"
        assert modified.svf.mode == "svf"
        assert modified.svf.ports == 4
        assert modified.decode_width == base.decode_width

    def test_invalid_svf_mode(self):
        with pytest.raises(ValueError):
            SVFConfig(mode="magic")

    def test_with_overrides(self):
        config = table2_config(16, dl1_ports=1)
        assert config.dl1_ports == 1
        assert config.with_(dl1_ports=4).dl1_ports == 4
