"""Tests for the binary instruction encoding."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.encoding import (
    EncodingError,
    decode,
    decode_program,
    encode,
    encode_program,
    is_sp_relative_memory,
)
from repro.isa.instructions import Instruction
from repro.isa.registers import RA, SP, ZERO
from repro.lang import compile_to_assembly


class TestSingleInstructions:
    @pytest.mark.parametrize(
        "instr",
        [
            Instruction("ldq", rd=1, rb=SP, imm=16),
            Instruction("stq", rd=5, rb=SP, imm=-8),
            Instruction("ldl", rd=2, rb=7, imm=32767),
            Instruction("stl", rd=2, rb=7, imm=-32768),
            Instruction("lda", rd=SP, rb=SP, imm=-64),
            Instruction("addq", ra=1, rb=2, rd=3),
            Instruction("addq", ra=1, imm=255, rd=3),
            Instruction("subq", ra=1, imm=-256, rd=3),
            Instruction("mulq", ra=30, rb=31, rd=0),
            Instruction("cmpeq", ra=4, imm=0, rd=5),
            Instruction("jsr", rd=RA, rb=9),
            Instruction("jmp", rb=9),
            Instruction("ret", rb=RA),
            Instruction("print", ra=3),
            Instruction("halt"),
            Instruction("nop"),
        ],
    )
    def test_round_trip_single_word(self, instr):
        words = encode(instr)
        decoded, used = decode(words)
        assert used == len(words)
        assert decoded.render() == instr.render()

    def test_branch_round_trip_keeps_target_index(self):
        instr = Instruction("beq", ra=4, target="x")
        instr.target_index = 1234
        words = encode(instr)
        assert len(words) == 1
        decoded, _ = decode(words)
        assert decoded.op == "beq"
        assert decoded.ra == 4
        assert decoded.target_index == 1234

    def test_bsr_round_trip(self):
        instr = Instruction("bsr", rd=RA, target="f")
        instr.target_index = 77
        decoded, _ = decode(encode(instr))
        assert decoded.op == "bsr"
        assert decoded.target_index == 77

    def test_large_displacement_uses_extended_form(self):
        instr = Instruction("lda", rd=1, rb=ZERO, imm=0x2000_0000)
        words = encode(instr)
        assert len(words) == 3
        decoded, used = decode(words)
        assert used == 3
        assert decoded.imm == 0x2000_0000
        assert decoded.op == "lda"

    def test_negative_64bit_immediate(self):
        instr = Instruction("addq", ra=2, imm=-(1 << 40), rd=3)
        decoded, _ = decode(encode(instr))
        assert decoded.imm == -(1 << 40)

    def test_far_branch_rejected(self):
        instr = Instruction("br", target="x")
        instr.target_index = 1 << 22
        with pytest.raises(EncodingError):
            encode(instr)

    def test_bad_opcode_rejected(self):
        with pytest.raises(EncodingError):
            decode([0])


class TestPredecode:
    def test_sp_relative_memory_detected(self):
        word = encode(Instruction("ldq", rd=1, rb=SP, imm=8))[0]
        assert is_sp_relative_memory(word)
        word = encode(Instruction("stq", rd=1, rb=SP, imm=8))[0]
        assert is_sp_relative_memory(word)

    def test_other_base_not_flagged(self):
        word = encode(Instruction("ldq", rd=1, rb=7, imm=8))[0]
        assert not is_sp_relative_memory(word)

    def test_non_memory_not_flagged(self):
        word = encode(Instruction("addq", ra=SP, imm=0, rd=1))[0]
        assert not is_sp_relative_memory(word)
        # lda is address arithmetic, not a memory access.
        word = encode(Instruction("lda", rd=SP, rb=SP, imm=-16))[0]
        assert not is_sp_relative_memory(word)


class TestWholePrograms:
    def test_assembled_program_round_trips(self):
        program = assemble(
            """
            main:
                lda sp, -32(sp)
                stq ra, 24(sp)
                lda a0, 5(zero)
                bsr square
                print v0
                ldq ra, 24(sp)
                lda sp, 32(sp)
                halt
            square:
                mulq a0, a0, v0
                ret
            """
        )
        blob = encode_program(program.instructions)
        decoded = decode_program(blob)
        assert len(decoded) == len(program.instructions)
        for original, restored in zip(program.instructions, decoded):
            assert restored.op == original.op
            if original.target is not None:
                # Labels are names, not bits: compare resolved targets.
                assert restored.target_index == original.target_index
            else:
                assert restored.render() == original.render()

    def test_compiled_workload_round_trips(self):
        source = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { print(fib(8)); return 0; }
        """
        from repro.isa.assembler import Assembler

        program = Assembler().assemble(
            compile_to_assembly(source), entry="__start"
        )
        blob = encode_program(program.instructions)
        decoded = decode_program(blob)
        assert len(decoded) == len(program.instructions)
        mismatches = [
            (a.render(), b.render())
            for a, b in zip(program.instructions, decoded)
            if a.op != b.op
        ]
        assert not mismatches

    def test_predecode_agrees_with_trace_classification(self):
        """The pre-decode bit test must match the semantic notion of an
        $sp-relative memory reference the SVF front-end relies on."""
        from repro.workloads import workload

        program = workload("gzip").program()
        for instr in program.instructions[:400]:
            words = encode(instr)
            if len(words) != 1:
                continue
            expected = instr.is_mem and instr.rb == SP
            assert is_sp_relative_memory(words[0]) == expected
