"""197.parser — natural-language link parser (recursive descent).

Models the parser's shape: a tokenizer filling a global token buffer
followed by mutually recursive parse functions whose depth follows the
nesting of the input.  Recursion-driven stack activity with small
frames.
"""

from __future__ import annotations

from repro.workloads.common import rand_source

# Token codes: 0=end, 1=number, 2='+', 3='*', 4='(', 5=')', 6='-'
_TEMPLATE = """
int tokens[{buffer}];
int token_count = 0;
int cursor = 0;
int parse_errors = 0;

int emit_token(int code) {{
    if (token_count < {buffer}) {{
        tokens[token_count] = code;
        token_count += 1;
    }}
    return code;
}}

int gen_expression(int depth) {{
    if (depth <= 0 || ((rand31() & 7) < 3 && depth < {min_depth})) {{
        emit_token(1);
        return 1;
    }}
    int shape = rand31() & 3;
    if (shape == 0) {{
        emit_token(4);
        gen_expression(depth - 1);
        emit_token(5);
        return 1;
    }}
    // Parenthesize every compound expression so parse nesting tracks
    // generation depth (link-parser sentences nest deeply).
    emit_token(4);
    gen_expression(depth - 1);
    if (shape == 1) {{
        emit_token(2);
    }}
    if (shape == 2) {{
        emit_token(3);
    }}
    if (shape == 3) {{
        emit_token(6);
    }}
    gen_expression(depth - 1);
    emit_token(5);
    return 2;
}}

int peek() {{
    if (cursor >= token_count) {{
        return 0;
    }}
    return tokens[cursor];
}}

int advance() {{
    int token = peek();
    cursor += 1;
    return token;
}}

int parse_factor() {{
    int token = advance();
    if (token == 1) {{
        return 1 + (rand31() & 7);
    }}
    if (token == 4) {{
        int value = parse_expr();
        if (peek() == 5) {{
            advance();
        }} else {{
            parse_errors += 1;
        }}
        return value;
    }}
    parse_errors += 1;
    return 0;
}}

int parse_term() {{
    // Candidate-linkage buffer per nesting level, like the link
    // parser's per-level connector lists: widens each parse frame.
    int partial[24];
    int count = 0;
    partial[0] = parse_factor();
    count = 1;
    while (peek() == 3 && count < 24) {{
        advance();
        partial[count] = parse_factor();
        count += 1;
    }}
    int value = 1;
    for (int i = 0; i < count; i += 1) {{
        value = (value * partial[i]) & 65535;
    }}
    return value;
}}

int parse_expr() {{
    int value = parse_term();
    while (peek() == 2 || peek() == 6) {{
        int op = advance();
        int rhs = parse_term();
        if (op == 2) {{
            value = value + rhs;
        }} else {{
            value = value - rhs;
        }}
    }}
    return value;
}}

int main() {{
    int checksum = 0;
    for (int sentence = 0; sentence < {sentences}; sentence += 1) {{
        token_count = 0;
        cursor = 0;
        gen_expression({depth});
        emit_token(0);
        checksum += parse_expr();
    }}
    print(checksum);
    print(parse_errors);
    return 0;
}}
"""


def make_source(
    sentences: int = 8,
    depth: int = 11,
    buffer: int = 1024,
    min_depth: int = 6,
    seed: int = 197,
) -> str:
    """Build the parser workload (``depth``/``min_depth`` set nesting)."""
    return rand_source(seed) + _TEMPLATE.format(
        sentences=sentences, depth=depth, buffer=buffer,
        min_depth=min(min_depth, depth),
    )


INPUTS = {"ref": dict(seed=197)}
