"""Tests for the first-touch analysis."""

from repro.emulator.memory import STACK_BASE
from repro.isa.instructions import OpClass
from repro.isa.registers import SP
from repro.trace.first_touch import FirstTouchProfile
from repro.trace.records import TraceRecord


def rec(index, *, sp, load_at=None, store_at=None, sp_update=False):
    is_load = load_at is not None
    is_store = store_at is not None
    return TraceRecord(
        index=index, pc=0x1000 + 4 * index,
        op="ldq" if is_load else ("stq" if is_store else "lda"),
        op_class=OpClass.LOAD if is_load
        else (OpClass.STORE if is_store else OpClass.IALU),
        srcs=(), dst=(SP if sp_update else None),
        is_load=is_load, is_store=is_store,
        addr=(load_at if is_load else (store_at or 0)),
        size=8, base_reg=SP if (is_load or is_store) else None,
        sp_value=sp, sp_update=sp_update,
    )


class TestSyntheticSequences:
    def test_store_first_after_allocation(self):
        profile = FirstTouchProfile()
        base = STACK_BASE
        profile.append(rec(0, sp=base))
        profile.append(rec(1, sp=base - 64, sp_update=True))
        profile.append(rec(2, sp=base - 64, store_at=base - 64))
        profile.append(rec(3, sp=base - 64, load_at=base - 64))
        assert profile.stack_first_stores == 1
        assert profile.stack_first_loads == 0
        assert profile.stack_first_store_fraction == 1.0

    def test_load_first_counted(self):
        profile = FirstTouchProfile()
        base = STACK_BASE
        profile.append(rec(0, sp=base))
        profile.append(rec(1, sp=base - 64, sp_update=True))
        profile.append(rec(2, sp=base - 64, load_at=base - 56))
        assert profile.stack_first_loads == 1
        assert profile.stack_first_store_fraction == 0.0

    def test_deallocation_kills_untouched_words(self):
        profile = FirstTouchProfile()
        base = STACK_BASE
        profile.append(rec(0, sp=base))
        profile.append(rec(1, sp=base - 64, sp_update=True))
        profile.append(rec(2, sp=base, sp_update=True))
        # Reallocate and touch: still counted as a fresh first touch.
        profile.append(rec(3, sp=base - 64, sp_update=True))
        profile.append(rec(4, sp=base - 64, store_at=base - 32))
        assert profile.stack_first_stores == 1

    def test_non_stack_words_counted_separately(self):
        profile = FirstTouchProfile()
        base = STACK_BASE
        profile.append(rec(0, sp=base))
        record = rec(1, sp=base, load_at=0x10000000)
        record.base_reg = 3
        profile.append(record)
        assert profile.other_first_loads == 1
        assert profile.stack_first_loads == 0


class TestOnRealTraces:
    def test_stack_words_are_written_first(self, crafty_trace):
        """The paper's claim: stack first-touches are mostly stores."""
        profile = FirstTouchProfile()
        for record in crafty_trace:
            profile.append(record)
        total = profile.stack_first_stores + profile.stack_first_loads
        assert total > 100
        assert profile.stack_first_store_fraction > 0.8

    def test_stack_beats_other_regions(self, eon_trace):
        profile = FirstTouchProfile()
        for record in eon_trace:
            profile.append(record)
        assert (
            profile.stack_first_store_fraction
            >= profile.other_first_store_fraction
        )
