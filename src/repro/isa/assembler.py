"""Two-pass textual assembler for the Alpha-like ISA.

Syntax example::

    .data
    table:  .quad 1, 2, 3
    buf:    .space 64

    .text
    main:
        lda   sp, -32(sp)
        stq   ra, 0(sp)
        lda   a0, table
        bsr   helper
        ldq   ra, 0(sp)
        lda   sp, 32(sp)
        halt

Directives: ``.text``, ``.data``, ``.quad v[, v...]``, ``.space n``.
Labels end with ``:`` and may share a line with an instruction or
directive.  ``lda rd, symbol`` loads the absolute address of a data
symbol (assembled as ``lda rd, addr(zero)``).  Comments start with
``#`` or ``;``.
"""

from __future__ import annotations

import re
import struct
from typing import List, Optional, Tuple

from repro.isa.instructions import (
    CONDITIONAL_BRANCHES,
    Instruction,
    InstructionError,
    OPCODES,
    OpClass,
    Program,
)
from repro.isa.registers import RA, RegisterError, ZERO, parse_register

_MEM_OPERAND = re.compile(r"^(-?\w+)\(([$\w]+)\)$")


class AssemblerError(ValueError):
    """Raised on any assembly syntax or semantic error."""

    def __init__(self, message: str, line_number: Optional[int] = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _parse_int(text: str, line_number: int) -> int:
    try:
        return int(text, 0)
    except ValueError as exc:
        raise AssemblerError(f"bad integer {text!r}", line_number) from exc


class Assembler:
    """Assemble textual source into a :class:`Program`."""

    def __init__(self, text_base: int = 0x1000, data_base: int = 0x10000000):
        self.text_base = text_base
        self.data_base = data_base

    def assemble(self, source: str, entry: str = "main") -> Program:
        """Assemble ``source`` and return a linked :class:`Program`."""
        program = Program(entry=entry)
        section = ".text"
        pending_fixups: List[Tuple[int, str, int]] = []

        for line_number, raw_line in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw_line)
            if not line:
                continue
            line, section = self._consume_labels(
                line, section, program, line_number
            )
            if not line:
                continue
            if line.startswith("."):
                section = self._directive(line, section, program, line_number)
                continue
            if section != ".text":
                raise AssemblerError(
                    f"instruction outside .text: {line!r}", line_number
                )
            instruction = self._parse_instruction(line, program, line_number)
            if instruction.target is not None:
                pending_fixups.append(
                    (len(program.instructions), instruction.target, line_number)
                )
            program.instructions.append(instruction)

        for index, label, line_number in pending_fixups:
            if label not in program.labels:
                raise AssemblerError(
                    f"undefined label {label!r}", line_number
                )
            program.instructions[index].target_index = program.labels[label]

        if entry not in program.labels:
            raise AssemblerError(f"missing entry label {entry!r}")
        return program

    def _consume_labels(self, line, section, program, line_number):
        while True:
            match = re.match(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$", line)
            if not match:
                return line, section
            label, rest = match.group(1), match.group(2)
            if section == ".text":
                if label in program.labels:
                    raise AssemblerError(
                        f"duplicate label {label!r}", line_number
                    )
                program.labels[label] = len(program.instructions)
            else:
                if label in program.symbols:
                    raise AssemblerError(
                        f"duplicate symbol {label!r}", line_number
                    )
                program.symbols[label] = self.data_base + len(program.data)
            line = rest.strip()
            if not line:
                return "", section

    def _directive(self, line, section, program, line_number):
        parts = line.split(None, 1)
        name = parts[0]
        argument = parts[1] if len(parts) > 1 else ""
        if name in (".text", ".data"):
            return name
        if name == ".quad":
            if section != ".data":
                raise AssemblerError(".quad outside .data", line_number)
            for chunk in argument.split(","):
                value = _parse_int(chunk.strip(), line_number)
                program.data.extend(
                    struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF)
                )
            return section
        if name == ".space":
            if section != ".data":
                raise AssemblerError(".space outside .data", line_number)
            size = _parse_int(argument.strip(), line_number)
            if size < 0:
                raise AssemblerError("negative .space size", line_number)
            program.data.extend(b"\x00" * size)
            return section
        raise AssemblerError(f"unknown directive {name!r}", line_number)

    def _parse_instruction(self, line, program, line_number) -> Instruction:
        parts = line.split(None, 1)
        op = parts[0].lower()
        operands = (
            [chunk.strip() for chunk in parts[1].split(",")]
            if len(parts) > 1
            else []
        )
        if op not in OPCODES:
            raise AssemblerError(f"unknown opcode {op!r}", line_number)
        spec = OPCODES[op]
        try:
            return self._build(op, spec, operands, program, line_number)
        except (RegisterError, InstructionError) as exc:
            raise AssemblerError(str(exc), line_number) from exc

    def _build(self, op, spec, operands, program, line_number) -> Instruction:
        if spec.mem_size > 0 or op == "lda":
            return self._build_memory_format(op, operands, program, line_number)
        if spec.op_class in (OpClass.IALU, OpClass.IMULT):
            return self._build_alu(op, operands, line_number)
        if op in CONDITIONAL_BRANCHES:
            self._expect_operands(op, operands, 2, line_number)
            return Instruction(
                op, ra=parse_register(operands[0]), target=operands[1]
            )
        if op == "br":
            self._expect_operands(op, operands, 1, line_number)
            return Instruction(op, target=operands[0])
        if op == "bsr":
            self._expect_operands(op, operands, 1, line_number)
            return Instruction(op, rd=RA, target=operands[0])
        if op in ("jsr", "jmp"):
            self._expect_operands(op, operands, 1, line_number)
            rd = RA if op == "jsr" else None
            return Instruction(op, rd=rd, rb=parse_register(operands[0]))
        if op == "ret":
            if len(operands) > 1:
                raise AssemblerError("ret takes at most one operand", line_number)
            rb = parse_register(operands[0]) if operands else RA
            return Instruction(op, rb=rb)
        if op == "print":
            self._expect_operands(op, operands, 1, line_number)
            return Instruction(op, ra=parse_register(operands[0]))
        if op in ("halt", "nop"):
            self._expect_operands(op, operands, 0, line_number)
            return Instruction(op)
        raise AssemblerError(f"unhandled opcode {op!r}", line_number)

    def _build_memory_format(self, op, operands, program, line_number):
        self._expect_operands(op, operands, 2, line_number)
        rd = parse_register(operands[0])
        operand = operands[1]
        match = _MEM_OPERAND.match(operand.replace(" ", ""))
        if match:
            displacement_text, base_text = match.group(1), match.group(2)
            base = parse_register(base_text)
            if re.fullmatch(r"-?(0x[0-9a-fA-F]+|\d+)", displacement_text):
                displacement = _parse_int(displacement_text, line_number)
            elif displacement_text in program.symbols:
                displacement = program.symbols[displacement_text]
            else:
                raise AssemblerError(
                    f"bad displacement {displacement_text!r}", line_number
                )
            return Instruction(op, rd=rd, rb=base, imm=displacement)
        # "lda rd, symbol" / "lda rd, 123" absolute forms.
        if op == "lda":
            if operand in program.symbols:
                return Instruction(
                    op, rd=rd, rb=ZERO, imm=program.symbols[operand]
                )
            if re.fullmatch(r"-?(0x[0-9a-fA-F]+|\d+)", operand):
                return Instruction(
                    op, rd=rd, rb=ZERO, imm=_parse_int(operand, line_number)
                )
        raise AssemblerError(f"bad memory operand {operand!r}", line_number)

    def _build_alu(self, op, operands, line_number) -> Instruction:
        self._expect_operands(op, operands, 3, line_number)
        ra = parse_register(operands[0])
        rd = parse_register(operands[2])
        second = operands[1]
        try:
            rb = parse_register(second)
            return Instruction(op, ra=ra, rb=rb, rd=rd)
        except RegisterError:
            imm = _parse_int(second, line_number)
            return Instruction(op, ra=ra, imm=imm, rd=rd)

    @staticmethod
    def _expect_operands(op, operands, count, line_number):
        if len(operands) != count:
            raise AssemblerError(
                f"{op} expects {count} operand(s), got {len(operands)}",
                line_number,
            )


def assemble(source: str, entry: str = "main") -> Program:
    """Convenience wrapper: assemble ``source`` with default bases."""
    return Assembler().assemble(source, entry=entry)
