"""Simulation statistics reported by the timing model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimStats:
    """Everything one pipeline simulation measured."""

    config_name: str = ""
    instructions: int = 0
    cycles: int = 0
    # Memory-system behaviour.
    loads: int = 0
    stores: int = 0
    dl1_accesses: int = 0
    dl1_hits: int = 0
    dl1_misses: int = 0
    l2_misses: int = 0
    store_forwards: int = 0
    # Branching.
    branches: int = 0
    mispredictions: int = 0
    # SVF behaviour (Figure 8, squashes of Section 3.2).
    svf_fast_loads: int = 0
    svf_fast_stores: int = 0
    svf_rerouted: int = 0
    svf_out_of_range: int = 0
    svf_fills: int = 0
    svf_squashes: int = 0
    # Stack-cache behaviour.
    stack_cache_hits: int = 0
    stack_cache_misses: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    def speedup_over(self, baseline: "SimStats") -> float:
        """Execution-time speedup of this run relative to ``baseline``.

        Both runs must have executed the same instruction window; the
        speedup is then the cycle-count ratio, as in the paper's
        figures (1.0 = no change, 1.29 = 29% faster).
        """
        if self.instructions != baseline.instructions:
            raise ValueError(
                "speedup requires identical instruction windows "
                f"({self.instructions} vs {baseline.instructions})"
            )
        if self.cycles == 0:
            return 0.0
        return baseline.cycles / self.cycles

    @property
    def svf_morphed(self) -> int:
        """References morphed into register moves (fast loads + stores)."""
        return self.svf_fast_loads + self.svf_fast_stores

    @property
    def svf_fast_fraction(self) -> float:
        """Fraction of SVF references morphed in the front-end (Fig 8)."""
        total = (
            self.svf_fast_loads + self.svf_fast_stores + self.svf_rerouted
        )
        if total == 0:
            return 0.0
        return (self.svf_fast_loads + self.svf_fast_stores) / total
