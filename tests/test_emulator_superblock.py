"""Differential gate for the superblock replay engine.

Step-decode is the reference implementation; replay must be
bit-identical on every registry workload, on hypothesis-fuzzed
programs, across window boundaries, and through mid-block faults.
The gate runs both paths in one process via
``set_superblock_enabled`` and compares full column traces.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.emulator import Machine
from repro.emulator.machine import EmulatorError
from repro.emulator.memory import MemoryError_
from repro.emulator.superblock import (
    MIN_BLOCK_LENGTH,
    set_superblock_enabled,
    superblock_enabled,
)
from repro.isa import assemble
from repro.profiling import profiled
from repro.trace.columnar import ColumnarTrace
from repro.workloads import registry


def _trace_with(source_or_workload, enabled, max_instructions=None):
    """Run with the engine toggled; returns (trace, machine, error)."""
    previous = set_superblock_enabled(enabled)
    try:
        if isinstance(source_or_workload, str):
            machine = Machine(assemble(source_or_workload))
        else:
            machine = Machine(source_or_workload.program())
        trace = ColumnarTrace()
        error = None
        try:
            machine.run(
                max_instructions=max_instructions, trace_sink=trace
            )
        except (EmulatorError, MemoryError_) as exc:
            error = (type(exc), str(exc))
        return trace, machine, error
    finally:
        set_superblock_enabled(previous)


def _assert_identical(source_or_workload, max_instructions=None):
    ref_trace, ref_machine, ref_error = _trace_with(
        source_or_workload, False, max_instructions
    )
    sb_trace, sb_machine, sb_error = _trace_with(
        source_or_workload, True, max_instructions
    )
    assert sb_error == ref_error
    assert len(sb_trace) == len(ref_trace)
    assert sb_trace == ref_trace
    assert sb_machine.registers == ref_machine.registers
    assert sb_machine.output == ref_machine.output
    assert sb_machine.instruction_count == ref_machine.instruction_count
    assert sb_machine.memory._words == ref_machine.memory._words
    return ref_trace


class TestWorkloadIdentity:
    @pytest.mark.parametrize("name", registry.ALL_BENCHMARKS)
    def test_replay_is_bit_identical(self, name):
        _assert_identical(registry.workload(name), 12_000)

    def test_window_can_land_mid_block(self):
        # Sweep a range of stop counts so some land inside a
        # straight-line region: the engine must fall back to
        # step-decode rather than overshoot the window.
        work = registry.workload("164.gzip")
        for window in range(3_000, 3_000 + 2 * MIN_BLOCK_LENGTH + 3):
            trace = _assert_identical(work, window)
            assert len(trace) == window


class TestFaultPaths:
    def test_division_by_zero_mid_block(self):
        # lda/lda/divq/print is one straight-line region; the fault
        # strikes after two ops retired, and the partial emit plus the
        # machine state must match step-decode exactly.
        _assert_identical(
            """
            main:
                lda r1, 7(zero)
                lda r2, 0(zero)
                divq r1, r2, r3
                print r3
                halt
            """
        )

    def test_unaligned_load_mid_block(self):
        _assert_identical(
            """
            main:
                lda r1, 64(zero)
                lda r2, 1(zero)
                ldq r3, 0(r2)
                print r3
                halt
            """
        )

    def test_unaligned_store_mid_block(self):
        _assert_identical(
            """
            main:
                lda r1, 5(zero)
                lda r2, 12(zero)
                stq r1, 1(r2)
                print r1
                halt
            """
        )


class TestToggleAndCounters:
    def test_toggle_returns_previous_state(self):
        original = superblock_enabled()
        try:
            assert set_superblock_enabled(False) == original
            assert superblock_enabled() is False
            assert set_superblock_enabled(True) is False
            assert superblock_enabled() is True
        finally:
            set_superblock_enabled(original)

    def test_env_var_disables_replay_at_startup(self):
        # Worker processes inherit REPRO_SUPERBLOCK=0, which is how
        # the CI differential smoke forces a --jobs N run onto the
        # step-decode reference path.
        env = dict(os.environ, REPRO_SUPERBLOCK="0")
        env["PYTHONPATH"] = str(Path(__file__).parent.parent / "src")
        probe = (
            "from repro.emulator.superblock import superblock_enabled;"
            "print(superblock_enabled())"
        )
        out = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        assert out.stdout.strip() == "False"
        env["REPRO_SUPERBLOCK"] = "1"
        out = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        assert out.stdout.strip() == "True"

    def test_counters_surface_through_profiler(self):
        work = registry.workload("164.gzip")
        previous = set_superblock_enabled(True)
        try:
            machine = Machine(work.program())
            with profiled() as profiler:
                machine.run(
                    max_instructions=8_000, trace_sink=ColumnarTrace()
                )
            assert profiler.counters["superblock_builds"] > 0
            assert profiler.counters["superblock_replays"] > 0
            replayed = profiler.counters[
                "superblock_replayed_instructions"
            ]
            assert replayed >= (
                MIN_BLOCK_LENGTH
                * profiler.counters["superblock_replays"]
            )
            # Warm templates: continuing the same machine may build a
            # few templates for newly reached code, but replays must
            # dominate — compiled templates are reused, never rebuilt.
            cold_builds = profiler.counters["superblock_builds"]
            with profiled() as warm:
                machine.run(
                    max_instructions=8_000, trace_sink=ColumnarTrace()
                )
            warm_builds = warm.counters.get("superblock_builds", 0)
            assert warm_builds <= cold_builds
            assert warm.counters["superblock_replays"] > warm_builds
        finally:
            set_superblock_enabled(previous)

    def test_disabled_engine_emits_no_counters(self):
        work = registry.workload("164.gzip")
        previous = set_superblock_enabled(False)
        try:
            with profiled() as profiler:
                machine = Machine(work.program())
                machine.run(
                    max_instructions=4_000, trace_sink=ColumnarTrace()
                )
            assert "superblock_replays" not in profiler.counters
        finally:
            set_superblock_enabled(previous)


#: registers the fuzz mutates (away from $sp/$ra/$zero).
_REGS = ["r1", "r2", "r3", "r4"]

_straight_op = st.one_of(
    st.tuples(
        st.sampled_from(["addq", "subq", "mulq", "xor", "sll", "srl",
                         "sra", "cmple", "divq", "remq"]),
        st.sampled_from(_REGS),
        st.sampled_from(_REGS),
        st.sampled_from(_REGS),
    ),
    st.tuples(st.just("lda"), st.sampled_from(_REGS),
              st.integers(-4096, 4096)),
    st.tuples(st.just("stq"), st.sampled_from(_REGS),
              st.integers(0, 31)),
    st.tuples(st.just("ldq"), st.sampled_from(_REGS),
              st.integers(0, 31)),
    st.tuples(st.just("print"), st.sampled_from(_REGS)),
)


class TestFuzzIdentity:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.lists(_straight_op, min_size=1, max_size=12),
            min_size=1,
            max_size=4,
        ),
        st.integers(1, 3),
    )
    def test_random_blocks_replay_identically(self, blocks, trips):
        # Random straight-line regions separated by a counted loop, so
        # templates are built once and replayed; divq/remq by a
        # possibly-zero register and sp-relative ldq/stq exercise the
        # fault and memory paths.
        lines = [
            "main:",
            "    lda sp, -256(sp)",
            f"    lda r5, {trips}(zero)",
            "loop:",
        ]
        for block_index, block in enumerate(blocks):
            for op in block:
                if op[0] == "lda":
                    _, rd, imm = op
                    lines.append(f"    lda {rd}, {imm}(zero)")
                elif op[0] in ("stq", "ldq"):
                    name, rd, slot = op
                    lines.append(f"    {name} {rd}, {8 * slot}(sp)")
                elif op[0] == "print":
                    lines.append(f"    print {op[1]}")
                else:
                    name, ra, rb, rd = op
                    lines.append(f"    {name} {ra}, {rb}, {rd}")
            # A branch terminates the region between fuzzed blocks.
            lines.append(f"    beq zero, b{block_index}")
            lines.append(f"b{block_index}:")
        lines += [
            "    subq r5, 1, r5",
            "    bne r5, loop",
            "    lda sp, 256(sp)",
            "    halt",
        ]
        _assert_identical("\n".join(lines))
