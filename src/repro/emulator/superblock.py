"""Superblock replay engine: batch-decoded micro-op templates.

The emulator's emit loop is the last record-at-a-time walk on the
produce side of the pipeline: even with the packed columnar fast path,
``Machine.run`` pays per retired instruction for a bounds check, a
9-tuple unpack, an integer dispatch and fourteen column ``append``
calls.  Straight-line code makes almost all of that work redundant —
between two control transfers the instruction sequence, and therefore
twelve of the fourteen column values, are a pure function of the entry
``pc_index``.

This module gives the *simulator* the same trace-cache-style
microarchitecture the paper gives the stack: at the first execution of
a basic-block head, the decoded tuples of the straight-line region are
compiled once into a replayable micro-op *template*; every subsequent
visit replays the template:

* the static columns (``pc``, ``opcode``, ``flags``, ``size``,
  ``base``, ``dst``, ``nsrc``, ``src0``, ``src1``, ``disp``,
  ``spimm``, ``next_pc`` — and ``sp``/``addr`` when the block touches
  neither) are emitted as whole column *slices* via one batched
  ``frombytes``/``extend`` per column instead of one ``append`` per
  instruction;
* the dynamic work (register updates, loads, stores, effective
  addresses) runs as a straight-line Python function compiled from the
  block once with ``exec`` — no per-instruction dispatch, no bounds
  check, no tuple unpack;
* a single exit check hands control back to the step-decode
  interpreter at the terminating branch/call/return.

Templates are keyed on ``pc_index`` and **never invalidated**: the
text segment is immutable for the lifetime of a :class:`Machine`
(programs are assembled up front; there is no store-to-text path), so
a compiled template can never go stale.  Hit/miss/replayed counters
are surfaced through :mod:`repro.profiling` by ``Machine.run``.

Replay is bit-identical to step-decode by construction — the same
handler functions run in the same order against the same state, and
the emitted column slices carry the values the step path would have
appended — and is gated differentially by
``tests/test_emulator_superblock.py`` (all registry workloads plus
hypothesis-fuzzed programs, windows, and fault paths).  Faults keep
the step path's semantics: when an op raises (division by zero, a bad
effective address), the template emits the columns of the ops that
retired before it and re-raises, leaving registers and memory exactly
as the interpreter would have.

``set_superblock_enabled`` toggles the engine at runtime (the
differential gate and the benchmarks compare both paths in one
process); the step-decode walk remains the reference implementation.
"""

from __future__ import annotations

import os
from array import array
from typing import List, Optional

from repro.emulator.memory import MemoryError_
from repro.trace import columnar as _columnar
from repro.trace.columnar import ColumnarTrace

_MASK64 = (1 << 64) - 1

#: Blocks shorter than this are not worth a template: the fixed
#: replay cost (one call plus fourteen batched column extends) only
#: amortizes over a few instructions.
MIN_BLOCK_LENGTH = 3

#: Runtime switch (see :func:`set_superblock_enabled`).  The
#: ``REPRO_SUPERBLOCK=0`` environment variable starts the process with
#: replay off — worker processes inherit it, so a whole ``--jobs N``
#: run can be forced onto the step-decode reference path (the CI
#: differential smoke compares both full reports byte-for-byte).
_ENABLED = os.environ.get("REPRO_SUPERBLOCK", "1") != "0"


def superblock_enabled() -> bool:
    """True when ``Machine.run`` replays templates on the packed path."""
    return _ENABLED


def set_superblock_enabled(enabled: bool) -> bool:
    """Toggle superblock replay; returns the previous state.

    Step-decode is the reference implementation; the differential
    tests and the benchmarks use this to run both paths in one
    process.  Disabling never drops compiled templates — re-enabling
    reuses them (text is immutable, so they cannot be stale).
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


# Structural kinds, mirrored from repro.emulator.machine (kept as
# literals here to avoid a circular import; machine.py asserts the
# correspondence at import time via build_template's contract).
_K_ALU = 0
_K_LOAD = 1
_K_LDA = 2
_K_STORE = 3
_K_PRINT = 9
_K_NOP = 11

#: Kinds a template may contain (everything else terminates the block).
_STRAIGHT_KINDS = frozenset((_K_ALU, _K_LOAD, _K_LDA, _K_STORE,
                             _K_PRINT, _K_NOP))

#: ALU handlers that are safe to inline as expressions.  Handlers that
#: need sign conversion or can raise stay as calls so error and
#: rounding semantics are byte-for-byte the step path's.
_INLINE_ALU = {
    "addq": "({a} + {b}) & M",
    "subq": "({a} - {b}) & M",
    "mulq": "({a} * {b}) & M",
    "and": "{a} & {b}",
    "or": "{a} | {b}",
    "xor": "{a} ^ {b}",
    "bic": "{a} & ~{b} & M",
    "sll": "({a} << ({b} & 63)) & M",
    "srl": "({a} & M) >> ({b} & 63)",
    "cmpeq": "1 if {a} == {b} else 0",
    "cmpult": "1 if {a} < {b} else 0",
}

#: Ops that can raise at runtime (division, memory faults).  A block
#: containing one carries a progress counter so a mid-block fault can
#: emit exactly the records that retired before it.
_FAULTING_ALU = frozenset(("divq", "remq"))

_ZERO = 31
_SP = 30


class SuperblockTemplate:
    """One compiled straight-line region.

    ``replay`` executes the block body against live machine state and
    emits one column slice per column; the caller advances
    ``pc_index`` to :attr:`end_index` (the terminator, handled by the
    step-decode interpreter) and ``count`` by :attr:`length`.
    """

    __slots__ = (
        "start_index",
        "end_index",
        "length",
        "mem_positions",
        "tracks_sp",
        "can_fault",
        "progress",
        "_fn",
        "_static",
        "_addr_zero",
        "_sp_stride",
    )

    def __init__(self, start_index, end_index, fn, static_blobs,
                 mem_positions, tracks_sp, can_fault):
        self.start_index = start_index
        self.end_index = end_index
        self.length = end_index - start_index
        self._fn = fn
        #: (pc, opcode, flags, size, base, dst, nsrc, src0, src1,
        #:  disp, spimm, next_pc) byte blobs, one slice per column.
        self._static = static_blobs
        self.mem_positions = mem_positions
        self.tracks_sp = tracks_sp
        self.can_fault = can_fault
        #: Shared progress cell: ops fully retired by the current call.
        self.progress = [0]
        self._addr_zero = bytes(8 * self.length)
        #: Per-op widths of the 8-byte columns, for partial emit.
        self._sp_stride = 8

    # ---------------------------------------------------------- replay
    def replay(self, registers, words, mem_load, mem_load_signed,
               mem_store, output_append, columns: ColumnarTrace,
               emitters):
        """Execute the block once and emit its column slices.

        ``words`` is the machine's backing word dict (aligned accesses
        are inlined against it; the ``Memory`` methods are the fault
        fallback).  ``emitters`` is the caller's prebound 12-tuple of
        batch column appenders (``columns.pc.frombytes`` ...
        ``next_pc.frombytes``, bound once per ``Machine.run`` call)
        for the static columns.  On a fault mid-block, emits the
        columns of the ops that retired before the faulting one and
        re-raises — registers and memory are left exactly as
        step-decode would leave them.
        """
        if self.tracks_sp:
            sps: Optional[List[int]] = []
            sp_append = sps.append
        else:
            sps = None
            sp_append = None
        if self.can_fault:
            addrs: List[int] = []
            progress = self.progress
            progress[0] = 0
            try:
                self._fn(
                    registers, words, mem_load, mem_load_signed,
                    mem_store, output_append, addrs.append, sp_append,
                    progress,
                )
            except MemoryError_:
                # The faulting op is the first memory op whose address
                # was never collected; every op before it retired.
                self._emit_partial(
                    columns, registers, addrs, sps,
                    self.mem_positions[len(addrs)], emitters,
                )
                raise
            except Exception:
                # Division fault: the body updates the progress cell
                # immediately before each divq/remq.
                self._emit_partial(
                    columns, registers, addrs, sps, progress[0], emitters
                )
                raise
        else:
            # Fault-free blocks have no loads/stores: no effective
            # addresses to collect, no progress to track.
            addrs = None
            self._fn(
                registers, None, None, None, None,
                output_append, None, sp_append, None,
            )

        (pc_b, op_b, fl_b, sz_b, ba_b, ds_b, ns_b, s0_b, s1_b,
         di_b, si_b, np_b) = self._static
        (e_pc, e_op, e_fl, e_sz, e_ba, e_ds, e_ns, e_s0, e_s1,
         e_di, e_si, e_np) = emitters
        e_pc(pc_b)
        e_op(op_b)
        e_fl(fl_b)
        e_sz(sz_b)
        e_ba(ba_b)
        e_ds(ds_b)
        e_ns(ns_b)
        e_s0(s0_b)
        e_s1(s1_b)
        e_di(di_b)
        e_si(si_b)
        e_np(np_b)

        # addr: zeros except at the block's memory ops, scattered from
        # the addresses the body collected (in op order).  The numpy
        # buffer path builds the slice vectorized when enabled; the
        # scatter loop over mem ops is the pure-python reference.
        n = self.length
        col_addr = columns.addr
        if not addrs:
            col_addr.frombytes(self._addr_zero)
        elif (
            _columnar._np is not None
            and _columnar._NUMPY_ENABLED
            and len(addrs) > 16
        ):
            np = _columnar._np
            buf = np.zeros(n, dtype="<u8")
            buf[self.mem_positions] = np.array(addrs, dtype="<u8")
            col_addr.frombytes(buf.tobytes())
        else:
            base_len = len(col_addr)
            col_addr.frombytes(self._addr_zero)
            for position, addr in zip(self.mem_positions, addrs):
                col_addr[base_len + position] = addr

        # sp: constant across a block with no $sp write (one repeated
        # fill), else the per-op values the body collected.
        if sps is None:
            columns.sp.frombytes(
                registers[_SP].to_bytes(8, "little") * n
            )
        else:
            columns.sp.extend(sps)

    def _emit_partial(self, columns, registers, addrs, sps, done,
                      emitters):
        """Append the first ``done`` ops' column values (fault path)."""
        if done == 0:
            return
        (pc_b, op_b, fl_b, sz_b, ba_b, ds_b, ns_b, s0_b, s1_b,
         di_b, si_b, np_b) = self._static
        (e_pc, e_op, e_fl, e_sz, e_ba, e_ds, e_ns, e_s0, e_s1,
         e_di, e_si, e_np) = emitters
        e_pc(pc_b[: 8 * done])
        e_op(op_b[:done])
        e_fl(fl_b[:done])
        e_sz(sz_b[:done])
        e_ba(ba_b[:done])
        e_ds(ds_b[:done])
        e_ns(ns_b[:done])
        e_s0(s0_b[:done])
        e_s1(s1_b[:done])
        e_di(di_b[: 8 * done])
        e_si(si_b[: 8 * done])
        e_np(np_b[: 8 * done])
        col_addr = columns.addr
        base_len = len(col_addr)
        col_addr.frombytes(self._addr_zero[: 8 * done])
        for position, addr in zip(self.mem_positions, addrs):
            if position >= done:
                break
            col_addr[base_len + position] = addr
        if sps is None:
            columns.sp.frombytes(
                registers[_SP].to_bytes(8, "little") * done
            )
        else:
            columns.sp.extend(sps[:done])


def build_template(decoded, emit_cols, start_index,
                   text_base) -> Optional[SuperblockTemplate]:
    """Compile the straight-line region at ``start_index``, or None.

    ``decoded``/``emit_cols`` are ``Machine``'s per-instruction
    execution tuples and static column tuples (the ALU handler rides
    in the decoded tuple itself).  Returns None when the region is
    shorter than :data:`MIN_BLOCK_LENGTH` (the caller caches the None
    so the lookup never repeats the walk).
    """
    limit = len(decoded)
    index = start_index
    ops = []
    while index < limit:
        entry = decoded[index]
        if entry[0] not in _STRAIGHT_KINDS:
            break
        ops.append(entry)
        index += 1
    length = index - start_index
    if length < MIN_BLOCK_LENGTH:
        return None

    tracks_sp = any(
        op[0] in (_K_ALU, _K_LOAD, _K_LDA) and op[2] == _SP for op in ops
    )
    can_fault = False
    mem_positions = []

    # ---------------------------------------------------------- body
    # R=registers W=memory word dict ml/mls/ms=Memory methods (fault
    # fallback) oa=output.append A=addrs.append S=sps.append (None for
    # blocks with no $sp write) P=progress cell.  Aligned memory
    # accesses are inlined against W with the exact semantics of
    # Memory.load/load_signed/store; the method call survives only on
    # the fault path (misalignment), so error type and message are the
    # step path's.  Before each divq/remq the body records how many
    # ops retired so far (``P[0] = position``); memory-fault progress
    # is recovered from ``len(addrs)`` instead (no per-op bookkeeping).
    lines = ["def _replay(R, W, ml, mls, ms, oa, A, S, P):"]
    body_start = len(lines)
    namespace = {"M": _MASK64}
    for position, op in enumerate(ops):
        kind, fn, rd, ra, rb, imm, rimm, _target, mem_size = op
        if kind == _K_ALU:
            if rimm is not None:
                right = repr(rimm)
            else:
                right = f"R[{rb}]"
            name = getattr(fn, "__name__", "")[5:]  # _alu_<name>
            inline = _INLINE_ALU.get(name)
            if name in _FAULTING_ALU:
                can_fault = True
                lines.append(f"    P[0] = {position}")
            if inline is not None:
                expr = inline.format(a=f"R[{ra}]", b=right)
                if rd != _ZERO:
                    lines.append(f"    R[{rd}] = {expr}")
                # Pure expression, dead destination: nothing to do.
            else:
                handler = f"H{position}"
                namespace[handler] = fn
                if rd != _ZERO:
                    lines.append(f"    R[{rd}] = {handler}(R[{ra}], {right})")
                elif name in _FAULTING_ALU:
                    # Division by zero must still raise.
                    lines.append(f"    {handler}(R[{ra}], {right})")
        elif kind == _K_LOAD:
            can_fault = True
            mem_positions.append(position)
            lines.append(f"    a = (R[{rb}] + {imm}) & M")
            if mem_size == 8:
                load = "WG(a, 0) if not a & 7 else ml(a, 8)"
                if rd != _ZERO:
                    lines.append(f"    R[{rd}] = {load}")
                else:
                    lines.append(f"    ({load})")
            else:
                lines.append(
                    "    v = ((WG(a & -8, 0) >> ((a & 4) << 3))"
                    " & 0xFFFFFFFF) if not a & 3 else mls(a, 4)"
                )
                if rd != _ZERO:
                    lines.append(
                        f"    R[{rd}] = (v - 0x100000000) & M"
                        " if v & 0x80000000 else v"
                    )
            lines.append("    A(a)")
        elif kind == _K_LDA:
            if rd != _ZERO:
                lines.append(f"    R[{rd}] = (R[{rb}] + {imm}) & M")
        elif kind == _K_STORE:
            can_fault = True
            mem_positions.append(position)
            lines.append(f"    a = (R[{rb}] + {imm}) & M")
            if mem_size == 8:
                lines.append("    if a & 7:")
                lines.append(f"        ms(a, R[{rd}], 8)")
                lines.append("    else:")
                lines.append(f"        W[a] = R[{rd}] & M")
            else:
                lines.append("    if a & 3:")
                lines.append(f"        ms(a, R[{rd}], 4)")
                lines.append("    else:")
                lines.append("        b = a & -8")
                lines.append("        s = (a & 4) << 3")
                lines.append(
                    "        W[b] = (WG(b, 0) & ~(0xFFFFFFFF << s))"
                    f" | ((R[{rd}] & 0xFFFFFFFF) << s)"
                )
            lines.append("    A(a)")
        elif kind == _K_PRINT:
            namespace.setdefault("SG", _signed)
            lines.append(f"    oa(SG(R[{ra}]))")
        # _K_NOP: retires a record but computes nothing.
        if tracks_sp:
            lines.append(f"    S(R[{_SP}])")
    if mem_positions:
        lines.insert(body_start, "    WG = W.get")
    if len(lines) == 1:
        lines.append("    pass")
    exec(compile("\n".join(lines), "<superblock>", "exec"), namespace)
    fn = namespace["_replay"]

    # ------------------------------------------------- static columns
    pcs = array("Q")
    opcodes = bytearray()
    flags = bytearray()
    sizes = bytearray()
    bases = array("b")
    dsts = array("b")
    nsrcs = bytearray()
    src0s = bytearray()
    src1s = bytearray()
    disps = array("q")
    spimms = array("q")
    next_pcs = array("Q")
    for offset in range(length):
        (pc, opnum, flag, size, base, dst, nsrc, src0, src1, disp,
         spimm) = emit_cols[start_index + offset]
        pcs.append(pc)
        opcodes.append(opnum)
        flags.append(flag)
        sizes.append(size)
        bases.append(base)
        dsts.append(dst)
        nsrcs.append(nsrc)
        src0s.append(src0)
        src1s.append(src1)
        disps.append(disp)
        spimms.append(spimm)
        next_pcs.append(text_base + 4 * (start_index + offset + 1))
    static_blobs = (
        pcs.tobytes(),
        bytes(opcodes),
        bytes(flags),
        bytes(sizes),
        bases.tobytes(),
        dsts.tobytes(),
        bytes(nsrcs),
        bytes(src0s),
        bytes(src1s),
        disps.tobytes(),
        spimms.tobytes(),
        next_pcs.tobytes(),
    )
    return SuperblockTemplate(
        start_index,
        index,
        fn,
        static_blobs,
        mem_positions,
        tracks_sp,
        can_fault,
    )


def _signed(value: int) -> int:
    return value - (1 << 64) if value & (1 << 63) else value


__all__ = [
    "MIN_BLOCK_LENGTH",
    "SuperblockTemplate",
    "build_template",
    "set_superblock_enabled",
    "superblock_enabled",
]
