"""Unit tests for the functional emulator."""

import pytest

from repro.emulator import EmulatorError, Machine, STACK_BASE, run_program
from repro.isa import assemble
from repro.isa.registers import SP


def run_source(source, max_instructions=None):
    program = assemble(source)
    return run_program(program, max_instructions=max_instructions)


def alu_result(op, left, right):
    machine, _ = run_source(
        f"""
        main:
            lda r1, {left}(zero)
            lda r2, {right}(zero)
            {op} r1, r2, r3
            print r3
            halt
        """
    )
    return machine.output[0]


class TestALUSemantics:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("addq", 2, 3, 5),
            ("addq", -2, 3, 1),
            ("subq", 2, 5, -3),
            ("mulq", -4, 6, -24),
            ("divq", 7, 2, 3),
            ("divq", -7, 2, -3),  # C-style truncation toward zero
            ("remq", 7, 2, 1),
            ("remq", -7, 2, -1),
            ("and", 12, 10, 8),
            ("or", 12, 10, 14),
            ("xor", 12, 10, 6),
            ("bic", 12, 10, 4),
            ("sll", 3, 4, 48),
            ("srl", 48, 4, 3),
            ("sra", -16, 2, -4),
            ("cmpeq", 5, 5, 1),
            ("cmpeq", 5, 6, 0),
            ("cmplt", -1, 0, 1),
            ("cmplt", 0, 0, 0),
            ("cmple", 0, 0, 1),
            ("cmpult", 1, 2, 1),
        ],
    )
    def test_binary_op(self, op, left, right, expected):
        assert alu_result(op, left, right) == expected

    def test_cmpult_treats_negative_as_large(self):
        assert alu_result("cmpult", -1, 1) == 0

    def test_srl_is_logical(self):
        machine, _ = run_source(
            """
            main:
                lda r1, -1(zero)
                srl r1, 63, r2
                print r2
                halt
            """
        )
        assert machine.output[0] == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(EmulatorError, match="division"):
            run_source("main:\n lda r1, 1(zero)\n divq r1, zero, r2\n halt")

    def test_64_bit_wraparound(self):
        machine, _ = run_source(
            """
            main:
                lda r1, 1(zero)
                sll r1, 63, r1
                addq r1, r1, r2
                print r2
                halt
            """
        )
        assert machine.output[0] == 0


class TestControlFlow:
    def test_conditional_branches(self):
        machine, _ = run_source(
            """
            main:
                lda r1, -5(zero)
                blt r1, neg
                print zero
                halt
            neg:
                lda r2, 1(zero)
                print r2
                halt
            """
        )
        assert machine.output == [1]

    def test_loop_counts(self):
        machine, _ = run_source(
            """
            main:
                lda r1, 0(zero)
            loop:
                addq r1, 1, r1
                cmplt r1, 10, r2
                bne r2, loop
                print r1
                halt
            """
        )
        assert machine.output == [10]

    def test_bsr_ret_nesting(self):
        machine, _ = run_source(
            """
            main:
                lda sp, -16(sp)
                stq ra, 0(sp)
                bsr outer
                print v0
                ldq ra, 0(sp)
                lda sp, 16(sp)
                halt
            outer:
                lda sp, -16(sp)
                stq ra, 0(sp)
                bsr inner
                addq v0, 1, v0
                ldq ra, 0(sp)
                lda sp, 16(sp)
                ret
            inner:
                lda v0, 41(zero)
                ret
            """
        )
        assert machine.output == [42]

    def test_jsr_indirect_call(self):
        machine, _ = run_source(
            """
            main:
                lda sp, -16(sp)
                stq ra, 0(sp)
                lda r4, target
                sll r4, 2, r4
                addq r4, 4096, r4
                jsr r4
                print v0
                halt
            target:
                lda v0, 9(zero)
                ret
            """.replace("lda r4, target", "lda r4, 8(zero)")
        )
        # target label is instruction index 8 -> address 4096 + 4*8
        assert machine.output == [9]

    def test_bad_jump_raises(self):
        with pytest.raises(EmulatorError, match="jump"):
            run_source("main:\n lda r4, 3(zero)\n jmp r4")

    def test_ret_from_main_halts(self):
        machine, _ = run_source("main:\n lda v0, 0(zero)\n ret")
        assert machine.halted


class TestMachineState:
    def test_sp_initialized_to_stack_base(self):
        program = assemble("main: halt")
        machine = Machine(program)
        assert machine.registers[SP] == STACK_BASE

    def test_instruction_limit_stops_run(self):
        machine, trace = run_source(
            "main:\n br main", max_instructions=25
        )
        assert machine.instruction_count == 25
        assert not machine.halted
        assert len(trace) == 25

    def test_run_resumes_after_limit(self):
        program = assemble(
            """
            main:
                lda r1, 0(zero)
            loop:
                addq r1, 1, r1
                br loop
            """
        )
        machine = Machine(program)
        machine.run(max_instructions=10)
        count_first = machine.instruction_count
        machine.run(max_instructions=10)
        assert machine.instruction_count == count_first + 10

    def test_zero_register_cannot_be_written(self):
        machine, _ = run_source(
            "main:\n lda zero, 5(zero)\n print zero\n halt"
        )
        assert machine.output == [0]

    def test_data_segment_loaded(self):
        machine, _ = run_source(
            """
            .data
            value: .quad 77
            .text
            main:
                lda r1, value
                ldq r2, 0(r1)
                print r2
                halt
            """
        )
        assert machine.output == [77]


class TestTraceRecords:
    def test_memory_record_fields(self):
        _, trace = run_source(
            """
            main:
                lda sp, -16(sp)
                stq ra, 8(sp)
                ldq r1, 8(sp)
                lda sp, 16(sp)
                halt
            """
        )
        store = trace[1]
        assert store.is_store and store.size == 8
        assert store.base_reg == SP and store.displacement == 8
        assert store.addr == STACK_BASE - 16 + 8
        load = trace[2]
        assert load.is_load and load.addr == store.addr

    def test_sp_update_records(self):
        _, trace = run_source(
            "main:\n lda sp, -32(sp)\n lda sp, 32(sp)\n halt"
        )
        updates = [r for r in trace if r.sp_update]
        assert [r.sp_update_immediate for r in updates] == [-32, 32]
        assert updates[0].sp_value == STACK_BASE - 32
        assert updates[1].sp_value == STACK_BASE

    def test_branch_records(self):
        _, trace = run_source(
            """
            main:
                lda r1, 1(zero)
                beq r1, skip
                bne r1, skip
            skip:
                halt
            """
        )
        beq, bne = trace[1], trace[2]
        assert beq.is_conditional and not beq.taken
        assert bne.is_conditional and bne.taken
        assert bne.next_pc != beq.next_pc or True  # both recorded
        assert beq.next_pc == beq.pc + 4

    def test_indices_are_sequential(self, recursive_run):
        _, trace = recursive_run
        assert [r.index for r in trace[:100]] == list(range(100))
